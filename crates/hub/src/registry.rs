//! The tenant registry: named sessions, a size-capped LRU of resident
//! graphs, per-tenant admission, and the shared rebuild queue.

use cla_cfront::{FileProvider, PpOptions};
use cla_core::SolveOptions;
use cla_ir::LowerOptions;
use cla_obs::{Counter, Gauge, Histogram, LATENCY_BUCKETS_US};
use cla_serve::{ServeOptions, Session, SessionError};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, RwLock};

/// Where a tenant's program comes from.
pub enum SessionSource {
    /// Compile and link C sources through `fs` (reloadable; the hub
    /// passes the provider back to `reload` requests).
    Files {
        fs: Arc<dyn FileProvider + Send + Sync>,
        files: Vec<String>,
        pp: PpOptions,
        lower: LowerOptions,
        /// Quarantine-and-continue mode: hostile sources become ledger
        /// entries and `partial: true` answers, not a dead tenant.
        lenient: bool,
    },
    /// An already linked `.clao` object on disk (reload re-reads it).
    Object { path: PathBuf },
}

/// Everything needed to (re)build one tenant's session. Kept by the hub
/// for the whole tenant lifetime: eviction drops the session, never the
/// spec, so a later request can rebuild it without the client's help.
pub struct SessionSpec {
    pub source: SessionSource,
    pub solve: SolveOptions,
    /// `.clasnap` directory backing eviction/rehydration. Without one the
    /// tenant still works, but every rehydration is a cold re-solve.
    pub snapshot_dir: Option<PathBuf>,
    /// Compile pool cap for builds (0 = one thread per CPU, 1 = serial).
    pub jobs: usize,
}

/// Hub-wide tuning knobs.
#[derive(Debug, Clone)]
pub struct HubOptions {
    /// Connection limits, shared with the Unix-socket server — TCP
    /// clients get the same idle-timeout/request-size hardening.
    pub serve: ServeOptions,
    /// Maximum sessions resident in memory at once; the least recently
    /// used idle tenant past this is evicted to its snapshot.
    pub capacity: usize,
    /// Per-tenant concurrent-request cap; excess requests get a typed
    /// `session busy` reply immediately.
    pub max_inflight: u64,
    /// Rebuild/rehydration permits shared across all tenants.
    pub rebuild_slots: usize,
}

impl Default for HubOptions {
    fn default() -> Self {
        HubOptions {
            serve: ServeOptions::default(),
            capacity: 8,
            max_inflight: 64,
            rebuild_slots: 2,
        }
    }
}

/// A typed hub-level failure; each variant maps to one wire error reply.
#[derive(Debug)]
pub enum HubError {
    UnknownSession(String),
    DuplicateSession(String),
    InvalidName(String),
    /// The tenant is at its in-flight cap; try again (the reply is
    /// immediate, so a client can back off instead of queueing blindly).
    Busy {
        name: String,
        cap: u64,
    },
    Build(SessionError),
}

impl std::fmt::Display for HubError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HubError::UnknownSession(n) => write!(f, "unknown session: {n}"),
            HubError::DuplicateSession(n) => write!(f, "session already open: {n}"),
            HubError::InvalidName(n) => write!(
                f,
                "invalid session name {n:?} (use [A-Za-z0-9_.-], at most 128 chars)"
            ),
            HubError::Busy { name, cap } => {
                write!(f, "session busy: {name} (inflight cap {cap})")
            }
            HubError::Build(e) => write!(f, "session build failed: {e}"),
        }
    }
}

impl std::error::Error for HubError {}

/// One tenant: the rebuild recipe plus the (possibly empty) resident slot.
struct Tenant {
    name: String,
    spec: SessionSpec,
    /// The resident session. `None` while evicted. Held locked across a
    /// rebuild, so same-tenant requests queue for the fresh graph while
    /// every other tenant is untouched.
    slot: Mutex<Option<Arc<Session>>>,
    /// Highest epoch this tenant has served (recorded at eviction); a
    /// rebuilt session is seeded past it so `(session, epoch)` stays
    /// monotonic across evict/rehydrate cycles.
    last_epoch: AtomicU64,
    /// Times this tenant's session was built (first build + rehydrations).
    builds: AtomicU64,
    /// LRU clock tick of the most recent request.
    last_used: AtomicU64,
    inflight: AtomicU64,
    ctr_requests: Counter,
    ctr_busy: Counter,
    ctr_evictions: Counter,
    ctr_rehydrations: Counter,
    hist: Histogram,
}

impl Tenant {
    fn fs(&self) -> Option<Arc<dyn FileProvider + Send + Sync>> {
        match &self.spec.source {
            SessionSource::Files { fs, .. } => Some(Arc::clone(fs)),
            SessionSource::Object { .. } => None,
        }
    }

    fn build(&self) -> Result<Session, SessionError> {
        match &self.spec.source {
            SessionSource::Files {
                fs,
                files,
                pp,
                lower,
                lenient,
            } => {
                let refs: Vec<&str> = files.iter().map(String::as_str).collect();
                let build = if *lenient {
                    Session::from_files_lenient
                } else {
                    Session::from_files_jobs
                };
                build(
                    fs.as_ref(),
                    &refs,
                    pp,
                    lower,
                    self.spec.solve,
                    self.spec.snapshot_dir.as_deref(),
                    self.spec.jobs,
                )
            }
            SessionSource::Object { path } => Session::from_object_path_with(
                path,
                self.spec.solve,
                self.spec.snapshot_dir.as_deref(),
            ),
        }
    }
}

/// One line of the `sessions` listing.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    pub name: String,
    /// `"resident"`, `"evicted"`, or `"rebuilding"` (slot locked by a
    /// rebuild in progress).
    pub state: &'static str,
    /// Current epoch (resident) or the epoch at eviction.
    pub epoch: u64,
    pub inflight: u64,
    pub requests: u64,
    pub busy_rejections: u64,
    pub evictions: u64,
    pub rehydrations: u64,
    /// Resident only: the session's health string.
    pub health: Option<&'static str>,
    /// Resident only: whether the current graph came from a snapshot.
    pub snapshot_loaded: Option<bool>,
}

/// Per-tenant counters snapshot (exposed for tests and the bench harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct TenantCounters {
    pub requests: u64,
    pub busy_rejections: u64,
    pub evictions: u64,
    pub rehydrations: u64,
}

/// Decrements the tenant's in-flight count on drop.
struct Admission<'a>(&'a Tenant);

impl Drop for Admission<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Relaxed);
    }
}

/// Releases one rebuild slot on drop.
struct RebuildPermit<'a>(&'a Hub);

impl Drop for RebuildPermit<'_> {
    fn drop(&mut self) {
        let mut n = self.0.rebuilds.lock().unwrap();
        *n -= 1;
        drop(n);
        self.0.rebuild_cv.notify_one();
    }
}

/// The session multiplexer: a registry of named tenants and the LRU of
/// resident graphs. All methods take `&self`; the hub is shared across
/// connection threads behind one `Arc`.
pub struct Hub {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
    opts: HubOptions,
    /// LRU clock; bumped per request.
    clock: AtomicU64,
    /// Active rebuilds, capped at `opts.rebuild_slots` via `rebuild_cv`.
    rebuilds: Mutex<usize>,
    rebuild_cv: Condvar,
    shutdown: AtomicBool,
    gauge_resident: Gauge,
    ctr_evictions: Counter,
    ctr_rehydrations: Counter,
}

impl Hub {
    pub fn new(opts: HubOptions) -> Hub {
        let obs = cla_obs::global();
        Hub {
            tenants: RwLock::new(BTreeMap::new()),
            opts,
            clock: AtomicU64::new(0),
            rebuilds: Mutex::new(0),
            rebuild_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            gauge_resident: obs.gauge("cla_hub_resident_sessions"),
            ctr_evictions: obs.counter("cla_hub_evictions_total"),
            ctr_rehydrations: obs.counter("cla_hub_rehydrations_total"),
        }
    }

    pub fn options(&self) -> &HubOptions {
        &self.opts
    }

    /// The hub-level shutdown flag, shared with the accept loop.
    pub fn shutdown_flag(&self) -> &AtomicBool {
        &self.shutdown
    }

    /// Registers and eagerly builds a named session, so `open` fails fast
    /// on a bad spec instead of poisoning the first query. Returns the
    /// seeded epoch and whether the graph came from a snapshot.
    pub fn open(&self, name: &str, spec: SessionSpec) -> Result<(u64, bool), HubError> {
        if name.is_empty()
            || name.len() > 128
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'-'))
        {
            return Err(HubError::InvalidName(name.to_string()));
        }
        let obs = cla_obs::global();
        let labels = &[("session", name)];
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            spec,
            slot: Mutex::new(None),
            last_epoch: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            last_used: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            ctr_requests: obs.counter_with("cla_hub_requests_total", labels),
            ctr_busy: obs.counter_with("cla_hub_busy_total", labels),
            ctr_evictions: obs.counter_with("cla_hub_evictions_total_by_session", labels),
            ctr_rehydrations: obs.counter_with("cla_hub_rehydrations_total_by_session", labels),
            hist: obs.histogram_with("cla_hub_latency_us", labels, LATENCY_BUCKETS_US),
        });
        {
            // Reserve the name first; the build happens outside the write
            // lock so a slow compile never blocks the whole registry.
            let mut tenants = self.tenants.write().unwrap();
            if tenants.contains_key(name) {
                return Err(HubError::DuplicateSession(name.to_string()));
            }
            tenants.insert(name.to_string(), Arc::clone(&tenant));
        }
        match self.resident(&tenant) {
            Ok(session) => {
                let (_, epoch) = session.snapshot();
                let loaded = session.snapshot_loaded();
                Ok((epoch, loaded))
            }
            Err(e) => {
                self.tenants.write().unwrap().remove(name);
                Err(e)
            }
        }
    }

    /// Removes a tenant. In-flight requests finish against their own
    /// `Arc` of the session; the graph is freed when the last one drops.
    pub fn close(&self, name: &str) -> Result<(), HubError> {
        let removed = self.tenants.write().unwrap().remove(name);
        match removed {
            Some(_) => {
                self.refresh_resident_gauge();
                Ok(())
            }
            None => Err(HubError::UnknownSession(name.to_string())),
        }
    }

    /// Admits one request for `name`, materializing the session if it was
    /// evicted, and runs `f` against it. Records per-tenant latency and
    /// request counters, and touches the LRU clock.
    pub fn with_session<T>(
        &self,
        name: &str,
        f: impl FnOnce(&Session, Option<&(dyn FileProvider + Send + Sync)>) -> T,
    ) -> Result<T, HubError> {
        let tenant = {
            let tenants = self.tenants.read().unwrap();
            Arc::clone(
                tenants
                    .get(name)
                    .ok_or_else(|| HubError::UnknownSession(name.to_string()))?,
            )
        };
        // Admission: a tenant at its in-flight cap gets an immediate typed
        // refusal. The cap is what keeps one chatty tenant from occupying
        // every worker thread the accept loop will ever spawn.
        if tenant.inflight.fetch_add(1, Relaxed) >= self.opts.max_inflight {
            tenant.inflight.fetch_sub(1, Relaxed);
            tenant.ctr_busy.inc();
            return Err(HubError::Busy {
                name: tenant.name.clone(),
                cap: self.opts.max_inflight,
            });
        }
        let gate = Admission(&tenant);
        tenant
            .last_used
            .store(self.clock.fetch_add(1, Relaxed) + 1, Relaxed);
        tenant.ctr_requests.inc();
        let session = self.resident(&tenant)?;
        let fs = tenant.fs();
        let t0 = std::time::Instant::now();
        let out = f(&session, fs.as_deref());
        tenant.hist.observe(t0.elapsed().as_micros() as u64);
        drop(gate);
        Ok(out)
    }

    /// The tenant's resident session, rebuilding it if evicted. Rebuilds
    /// hold the tenant's slot lock (same-tenant requests queue for the
    /// fresh graph) and one of the shared rebuild permits (cross-tenant
    /// fairness: a stampede of cold tenants can't take every thread).
    fn resident(&self, tenant: &Arc<Tenant>) -> Result<Arc<Session>, HubError> {
        let mut slot = tenant.slot.lock().unwrap();
        if let Some(s) = slot.as_ref() {
            return Ok(Arc::clone(s));
        }
        let _permit = self.rebuild_permit();
        let session = tenant.build().map_err(HubError::Build)?;
        let rebuilt = tenant.builds.fetch_add(1, Relaxed) > 0;
        if rebuilt {
            // Seed past the last served epoch: the rebuilt graph may
            // differ from the evicted one (sources changed on disk), so
            // it must never reuse an epoch already handed to clients.
            let epoch = tenant.last_epoch.load(Relaxed) + 1;
            session.set_epoch(epoch);
            tenant.last_epoch.store(epoch, Relaxed);
            tenant.ctr_rehydrations.inc();
            self.ctr_rehydrations.inc();
        }
        let session = Arc::new(session);
        *slot = Some(Arc::clone(&session));
        drop(slot);
        self.enforce_capacity(&tenant.name);
        self.refresh_resident_gauge();
        Ok(session)
    }

    fn rebuild_permit(&self) -> RebuildPermit<'_> {
        let mut n = self.rebuilds.lock().unwrap();
        while *n >= self.opts.rebuild_slots.max(1) {
            n = self.rebuild_cv.wait(n).unwrap();
        }
        *n += 1;
        RebuildPermit(self)
    }

    /// Evicts least-recently-used idle tenants until at most `capacity`
    /// sessions are resident. `keep` (the tenant that just materialized)
    /// is never a candidate. Tenants with requests in flight or a locked
    /// slot are skipped — dropping their `Arc` would be safe, but evicting
    /// a hot tenant only buys an immediate rebuild.
    fn enforce_capacity(&self, keep: &str) {
        let tenants: Vec<Arc<Tenant>> = {
            let map = self.tenants.read().unwrap();
            map.values().map(Arc::clone).collect()
        };
        let mut resident = 0usize;
        let mut candidates: Vec<(u64, Arc<Tenant>)> = Vec::new();
        for t in &tenants {
            let Ok(slot) = t.slot.try_lock() else {
                // Locked slot: a rebuild is in flight, counts as resident.
                resident += 1;
                continue;
            };
            if slot.is_some() {
                resident += 1;
                if t.name != keep && t.inflight.load(Relaxed) == 0 {
                    candidates.push((t.last_used.load(Relaxed), Arc::clone(t)));
                }
            }
        }
        if resident <= self.opts.capacity.max(1) {
            return;
        }
        candidates.sort_by_key(|(used, _)| *used);
        let mut excess = resident - self.opts.capacity.max(1);
        for (_, t) in candidates {
            if excess == 0 {
                break;
            }
            let Ok(mut slot) = t.slot.try_lock() else {
                continue;
            };
            // Re-check under the lock: a request may have landed since
            // the scan. Skipping it is fine — capacity is a target, not
            // an invariant the next enforcement pass can't restore.
            if t.inflight.load(Relaxed) != 0 {
                continue;
            }
            if let Some(session) = slot.take() {
                let (_, epoch) = session.snapshot();
                t.last_epoch.store(epoch, Relaxed);
                t.ctr_evictions.inc();
                self.ctr_evictions.inc();
                excess -= 1;
            }
        }
    }

    fn refresh_resident_gauge(&self) {
        let tenants = self.tenants.read().unwrap();
        let resident = tenants
            .values()
            .filter(|t| t.slot.try_lock().map(|s| s.is_some()).unwrap_or(true))
            .count();
        self.gauge_resident.set(resident as u64);
    }

    /// Counters for one tenant (0s if the name is unknown).
    pub fn tenant_counters(&self, name: &str) -> TenantCounters {
        let tenants = self.tenants.read().unwrap();
        tenants
            .get(name)
            .map(|t| TenantCounters {
                requests: t.ctr_requests.get(),
                busy_rejections: t.ctr_busy.get(),
                evictions: t.ctr_evictions.get(),
                rehydrations: t.ctr_rehydrations.get(),
            })
            .unwrap_or_default()
    }

    /// A snapshot of every tenant for the `sessions` command.
    pub fn sessions(&self) -> Vec<SessionInfo> {
        let tenants: Vec<Arc<Tenant>> = {
            let map = self.tenants.read().unwrap();
            map.values().map(Arc::clone).collect()
        };
        tenants
            .iter()
            .map(|t| {
                let (state, epoch, health, snapshot_loaded) = match t.slot.try_lock() {
                    Ok(slot) => match slot.as_ref() {
                        Some(s) => (
                            "resident",
                            s.snapshot().1,
                            Some(s.health().as_str()),
                            Some(s.snapshot_loaded()),
                        ),
                        None => ("evicted", t.last_epoch.load(Relaxed), None, None),
                    },
                    Err(_) => ("rebuilding", t.last_epoch.load(Relaxed), None, None),
                };
                SessionInfo {
                    name: t.name.clone(),
                    state,
                    epoch,
                    inflight: t.inflight.load(Relaxed),
                    requests: t.ctr_requests.get(),
                    busy_rejections: t.ctr_busy.get(),
                    evictions: t.ctr_evictions.get(),
                    rehydrations: t.ctr_rehydrations.get(),
                    health,
                    snapshot_loaded,
                }
            })
            .collect()
    }

    /// Refreshes the per-tenant latency percentile gauges
    /// (`cla_hub_latency_p{50,90,99}_us{session=…}`) from each tenant's
    /// hub-side latency histogram, so the Prometheus exposition carries
    /// the per-tenant p50/p99 the acceptance gate asserts on. The
    /// histogram covers the whole admission-to-answer path (including
    /// rebuilds on rehydration) and survives eviction, so evicted tenants
    /// keep meaningful figures too.
    pub fn publish_tenant_percentiles(&self) {
        let tenants: Vec<Arc<Tenant>> = {
            let map = self.tenants.read().unwrap();
            map.values().map(Arc::clone).collect()
        };
        let obs = cla_obs::global();
        for t in &tenants {
            let labels = &[("session", t.name.as_str())];
            for (name, p) in [
                ("cla_hub_latency_p50_us", 0.50),
                ("cla_hub_latency_p90_us", 0.90),
                ("cla_hub_latency_p99_us", 0.99),
            ] {
                obs.gauge_with(name, labels).set(t.hist.percentile(p));
            }
            let epoch = match t.slot.try_lock() {
                Ok(slot) => match slot.as_ref() {
                    Some(s) => s.snapshot().1,
                    None => t.last_epoch.load(Relaxed),
                },
                Err(_) => t.last_epoch.load(Relaxed),
            };
            obs.gauge_with("cla_hub_epoch", labels).set(epoch);
        }
    }

    /// Number of registered tenants (resident or not).
    pub fn tenant_count(&self) -> usize {
        self.tenants.read().unwrap().len()
    }
}
