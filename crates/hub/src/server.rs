//! The TCP front end: an accept loop over [`cla_serve::serve_connection`]
//! plus the hub-level command dispatcher.

use crate::registry::{Hub, HubError, SessionSource, SessionSpec};
use cla_cfront::{FileProvider, OsFs, PpOptions};
use cla_core::SolveOptions;
use cla_ir::LowerOptions;
use cla_serve::json::{obj, parse, Value};
use cla_serve::{handle_request, serve_connection};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::Arc;
use std::thread::JoinHandle;

fn err_reply(msg: &str) -> Value {
    obj([("ok", false.into()), ("error", msg.into())])
}

impl HubError {
    /// The wire form: a structured error, with the session echoed so a
    /// pipelining client can match the refusal to its request.
    fn to_reply(&self) -> Value {
        let mut reply = err_reply(&self.to_string());
        let name = match self {
            HubError::UnknownSession(n)
            | HubError::DuplicateSession(n)
            | HubError::InvalidName(n) => Some(n.as_str()),
            HubError::Busy { name, .. } => Some(name.as_str()),
            HubError::Build(_) => None,
        };
        if let (Some(n), Value::Obj(map)) = (name, &mut reply) {
            map.insert("session".to_string(), n.into());
        }
        if let (HubError::Busy { .. }, Value::Obj(map)) = (self, &mut reply) {
            map.insert("busy".to_string(), true.into());
        }
        reply
    }
}

/// Answers one request line against the hub. Lifecycle commands (`open`,
/// `close`, `sessions`, `metrics`, `shutdown`) are handled here; anything
/// else must name a `session` and is routed to that tenant's
/// [`cla_serve::handle_request`] with the raw line passed through
/// verbatim (the serve dispatcher ignores the extra `session` field).
pub fn dispatch(hub: &Hub, line: &str) -> Value {
    let req = match parse(line) {
        Ok(v) => v,
        Err(e) => return err_reply(&format!("malformed request: {e}")),
    };
    let Some(cmd) = req.get("cmd").and_then(Value::as_str) else {
        return err_reply("missing \"cmd\"");
    };
    match cmd {
        "open" => handle_open(hub, &req),
        "close" => {
            let Some(name) = req.get("session").and_then(Value::as_str) else {
                return err_reply("close needs \"session\"");
            };
            match hub.close(name) {
                Ok(()) => obj([
                    ("ok", true.into()),
                    ("session", name.into()),
                    ("closed", true.into()),
                ]),
                Err(e) => e.to_reply(),
            }
        }
        "sessions" => {
            let infos = hub.sessions();
            let resident = infos.iter().filter(|i| i.state != "evicted").count();
            obj([
                ("ok", true.into()),
                ("capacity", hub.options().capacity.into()),
                ("resident", resident.into()),
                (
                    "sessions",
                    Value::Arr(
                        infos
                            .iter()
                            .map(|i| {
                                let mut pairs = vec![
                                    ("session", Value::from(i.name.as_str())),
                                    ("state", i.state.into()),
                                    ("epoch", i.epoch.into()),
                                    ("inflight", i.inflight.into()),
                                    ("requests", i.requests.into()),
                                    ("busy_rejections", i.busy_rejections.into()),
                                    ("evictions", i.evictions.into()),
                                    ("rehydrations", i.rehydrations.into()),
                                ];
                                if let Some(h) = i.health {
                                    pairs.push(("health", h.into()));
                                }
                                if let Some(s) = i.snapshot_loaded {
                                    pairs.push(("snapshot_loaded", s.into()));
                                }
                                obj(pairs)
                            })
                            .collect(),
                    ),
                ),
            ])
        }
        "metrics" => {
            hub.publish_tenant_percentiles();
            obj([
                ("ok", true.into()),
                ("metrics", cla_obs::global().prometheus_text().into()),
            ])
        }
        "shutdown" => {
            hub.shutdown_flag().store(true, SeqCst);
            obj([("ok", true.into()), ("sessions", hub.tenant_count().into())])
        }
        _ => {
            let Some(name) = req.get("session").and_then(Value::as_str) else {
                return err_reply(&format!(
                    "cmd {cmd:?} needs \"session\" (hub-level cmds: open, close, sessions, metrics, shutdown)"
                ));
            };
            let routed = hub.with_session(name, |session, fs| {
                // Degraded tenants retry their reload on incoming traffic,
                // exactly like the single-session server.
                session.maybe_recover(fs.map(|f| f as &dyn FileProvider));
                // Tenant commands must not stop the hub: `shutdown` never
                // routes here, and nothing else writes the flag.
                let sink = AtomicBool::new(false);
                handle_request(session, fs, line, &sink, &hub.options().serve)
            });
            match routed {
                Ok(mut reply) => {
                    if let Value::Obj(map) = &mut reply {
                        map.insert("session".to_string(), name.into());
                    }
                    reply
                }
                Err(e) => e.to_reply(),
            }
        }
    }
}

/// Builds a [`SessionSpec`] from an `open` request and registers it.
/// Sources are read through [`OsFs`]: the hub serves codebases that live
/// on its own filesystem (tests register in-memory tenants through
/// [`Hub::open`] directly).
fn handle_open(hub: &Hub, req: &Value) -> Value {
    let Some(name) = req.get("session").and_then(Value::as_str) else {
        return err_reply("open needs \"session\"");
    };
    let str_list = |key: &str| -> Vec<String> {
        req.get(key)
            .and_then(Value::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(Value::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    };
    let snapshot_dir = req
        .get("snapshot_dir")
        .and_then(Value::as_str)
        .map(PathBuf::from);
    let jobs = req.get("jobs").and_then(Value::as_u64).unwrap_or(1) as usize;
    let source = if let Some(object) = req.get("object").and_then(Value::as_str) {
        SessionSource::Object {
            path: PathBuf::from(object),
        }
    } else {
        let files = str_list("files");
        if files.is_empty() {
            return err_reply("open needs \"files\" (or \"object\")");
        }
        let pp = PpOptions {
            include_dirs: str_list("include"),
            ..PpOptions::default()
        };
        SessionSource::Files {
            fs: Arc::new(OsFs),
            files,
            pp,
            lower: LowerOptions::default(),
            lenient: req.get("lenient").and_then(Value::as_bool).unwrap_or(false),
        }
    };
    let spec = SessionSpec {
        source,
        solve: SolveOptions::default(),
        snapshot_dir,
        jobs,
    };
    match hub.open(name, spec) {
        Ok((epoch, snapshot_loaded)) => obj([
            ("ok", true.into()),
            ("session", name.into()),
            ("epoch", epoch.into()),
            ("snapshot_loaded", snapshot_loaded.into()),
        ]),
        Err(e) => e.to_reply(),
    }
}

/// A running hub bound to a TCP address.
pub struct HubHandle {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    hub: Arc<Hub>,
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral test port) and
/// serves `hub` on it until shutdown. Every connection runs through
/// [`cla_serve::serve_connection`], so TCP clients are subject to the
/// same idle-timeout and request-size limits as Unix-socket clients.
pub fn hub_serve(hub: Arc<Hub>, addr: &str) -> std::io::Result<HubHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let accept = {
        let hub = Arc::clone(&hub);
        std::thread::spawn(move || {
            // Polling accept: shutdown must not depend on the one wake
            // connect from `on_shutdown`/`stop` arriving — if it's lost,
            // a blocking accept would leave `join()` stuck forever.
            let _ = listener.set_nonblocking(true);
            loop {
                if hub.shutdown_flag().load(SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = stream.set_nonblocking(false);
                        let hub = Arc::clone(&hub);
                        std::thread::spawn(move || serve_tcp_client(&hub, stream, local));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(25));
                    }
                    Err(_) => {}
                }
            }
        })
    };
    Ok(HubHandle {
        addr: local,
        accept: Some(accept),
        hub,
    })
}

fn serve_tcp_client(hub: &Hub, stream: TcpStream, local: SocketAddr) {
    let _ = stream.set_read_timeout(hub.options().serve.read_timeout);
    // One small reply per request: batching hurts tail latency here.
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    serve_connection(
        &mut reader,
        &mut writer,
        hub.shutdown_flag(),
        &hub.options().serve,
        || {},
        |line| dispatch(hub, line),
        || {
            let _ = TcpStream::connect(local);
        },
    );
}

impl HubHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared hub (for in-process registration alongside the socket).
    pub fn hub(&self) -> &Arc<Hub> {
        &self.hub
    }

    /// Stops accepting and waits for the accept loop.
    pub fn stop(mut self) {
        self.hub.shutdown_flag().store(true, SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }

    /// Waits for a client's `shutdown` command to stop the hub.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HubHandle {
    fn drop(&mut self) {
        self.hub.shutdown_flag().store(true, SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}
