//! Per-thread stacks of active span names, readable from other threads.
//!
//! This is the substrate the `cla-prof` sampling profiler stands on. Every
//! span name is interned to a small `u32` id; each thread that opens a span
//! while the stacks are enabled owns a fixed-size array of atomic slots plus
//! an atomic depth. The owning thread pushes and pops; the sampler thread
//! reads `(depth, slots[0..depth])` without stopping anyone. A sample that
//! races a push/pop may see a stack that is one frame stale — that is one
//! mis-attributed sample out of thousands, not a correctness problem.
//!
//! The stacks are off by default and cost the span hot path exactly one
//! relaxed atomic load while off. [`enable`]/[`disable`] form a refcount so
//! several profilers (or a profiler plus the counting allocator) can overlap.
//!
//! Stacks are created lazily, registered in a process-global list, and never
//! freed: the counting allocator in `cla-prof` reads the current thread's
//! stack from inside `alloc`, so the backing memory must stay valid for the
//! life of the process. The leak is bounded by the number of threads that
//! ever open a span while enabled (~¼ KiB each).

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Frames beyond this depth are counted (so pops stay balanced) but not
/// recorded. CLA span nesting is shallow (pipeline → phase → file → pass);
/// 32 frames is several times the deepest real stack.
pub const MAX_DEPTH: usize = 32;

/// Reserved id rendered as `(no span)`: the top of an empty stack, and the
/// overflow id for stacks deeper than [`MAX_DEPTH`].
pub const NO_SPAN: u32 = 0;

/// One thread's stack of interned span ids. Single writer (the owning
/// thread), any number of readers.
pub struct ThreadStack {
    tid: u64,
    depth: AtomicUsize,
    slots: [AtomicU32; MAX_DEPTH],
}

impl ThreadStack {
    fn new(tid: u64) -> Self {
        Self {
            tid,
            depth: AtomicUsize::new(0),
            slots: [const { AtomicU32::new(NO_SPAN) }; MAX_DEPTH],
        }
    }

    #[inline]
    fn push(&self, id: u32) {
        let d = self.depth.load(Ordering::Relaxed);
        if d < MAX_DEPTH {
            self.slots[d].store(id, Ordering::Relaxed);
        }
        // Release so a reader that observes the new depth also observes the
        // slot written above.
        self.depth.store(d + 1, Ordering::Release);
    }

    #[inline]
    fn pop(&self) {
        let d = self.depth.load(Ordering::Relaxed);
        if d > 0 {
            self.depth.store(d - 1, Ordering::Release);
        }
    }

    /// Innermost span id, or [`NO_SPAN`] when the stack is empty.
    #[inline]
    pub fn top(&self) -> u32 {
        let d = self.depth.load(Ordering::Acquire).min(MAX_DEPTH);
        if d == 0 {
            NO_SPAN
        } else {
            self.slots[d - 1].load(Ordering::Relaxed)
        }
    }

    /// Snapshot the stack outermost-first. Empty when the thread has no
    /// open spans.
    pub fn snapshot(&self, out: &mut Vec<u32>) {
        out.clear();
        let d = self.depth.load(Ordering::Acquire).min(MAX_DEPTH);
        for slot in &self.slots[..d] {
            out.push(slot.load(Ordering::Relaxed));
        }
    }
}

/// How many callers currently want stacks maintained.
static USERS: AtomicUsize = AtomicUsize::new(0);

/// Every thread's stack, in creation order. Entries are `'static` (leaked)
/// so lock-free readers — including the allocator — never race a free.
static REGISTRY: Mutex<Vec<&'static ThreadStack>> = Mutex::new(Vec::new());

/// Interner state: name → id and the reverse table. Ids start at 1
/// ([`NO_SPAN`] is 0).
static NAMES: Mutex<Option<Interner>> = Mutex::new(None);

struct Interner {
    ids: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

thread_local! {
    // Raw pointer so access is const-initialised and destructor-free: the
    // counting allocator reads this from inside `alloc`, where a lazily
    // initialised thread-local would recurse into the allocator.
    static CUR: Cell<*const ThreadStack> = const { Cell::new(std::ptr::null()) };
}

/// Turn span-stack maintenance on (refcounted). Returns a guard-free token;
/// pair every call with [`disable`].
pub fn enable() {
    USERS.fetch_add(1, Ordering::SeqCst);
}

/// Drop one enable refcount.
pub fn disable() {
    let prev = USERS.fetch_sub(1, Ordering::SeqCst);
    debug_assert!(prev > 0, "span-stack disable without matching enable");
}

/// Are stacks currently being maintained? One relaxed load — this is the
/// only cost the feature adds to the disabled span hot path.
#[inline]
pub fn enabled() -> bool {
    USERS.load(Ordering::Relaxed) > 0
}

/// Intern `name`, returning its stable id (> 0).
pub fn intern(name: &'static str) -> u32 {
    let mut guard = NAMES.lock().expect("span-name interner poisoned");
    let interner = guard.get_or_insert_with(|| Interner {
        ids: HashMap::new(),
        names: vec!["(no span)"],
    });
    if let Some(&id) = interner.ids.get(name) {
        return id;
    }
    let id = interner.names.len() as u32;
    interner.names.push(name);
    interner.ids.insert(name, id);
    id
}

/// Resolve an interned id back to its span name.
pub fn name_of(id: u32) -> &'static str {
    let guard = NAMES.lock().expect("span-name interner poisoned");
    guard
        .as_ref()
        .and_then(|i| i.names.get(id as usize).copied())
        .unwrap_or("(no span)")
}

fn this_thread_stack() -> &'static ThreadStack {
    let p = CUR.with(|c| c.get());
    if !p.is_null() {
        // Safety: the pointee is leaked at registration and never freed.
        return unsafe { &*p };
    }
    let stack: &'static ThreadStack = Box::leak(Box::new(ThreadStack::new(crate::current_tid())));
    REGISTRY
        .lock()
        .expect("span-stack registry poisoned")
        .push(stack);
    CUR.with(|c| c.set(stack as *const ThreadStack));
    stack
}

/// Push `name` onto the current thread's stack if stacks are enabled.
/// Returns whether a pop is owed — span guards remember this so a profiler
/// started mid-span still sees balanced stacks.
#[inline]
pub(crate) fn push(name: &'static str) -> bool {
    if !enabled() {
        return false;
    }
    this_thread_stack().push(intern(name));
    true
}

/// Pop the current thread's stack (only called when `push` returned true).
#[inline]
pub(crate) fn pop() {
    let p = CUR.with(|c| c.get());
    if !p.is_null() {
        unsafe { (*p).pop() };
    }
}

/// Innermost span id on the *current* thread, [`NO_SPAN`] when none. Safe
/// to call from a global allocator: no allocation, no lazy thread-local
/// init, tolerates being called during thread teardown.
#[inline]
pub fn current_span_id() -> u32 {
    CUR.try_with(|c| {
        let p = c.get();
        if p.is_null() {
            NO_SPAN
        } else {
            unsafe { (*p).top() }
        }
    })
    .unwrap_or(NO_SPAN)
}

/// Snapshot every registered thread's stack as `(tid, outermost-first ids)`.
/// Threads with no open span are skipped. `scratch` is reused between calls
/// so the sampler allocates only for non-empty stacks.
pub fn sample_stacks(out: &mut Vec<(u64, Vec<u32>)>, scratch: &mut Vec<u32>) {
    out.clear();
    let registry = REGISTRY.lock().expect("span-stack registry poisoned");
    for stack in registry.iter() {
        stack.snapshot(scratch);
        if !scratch.is_empty() {
            out.push((stack.tid, scratch.clone()));
        }
    }
}

/// Current depth of the calling thread's stack (test hook).
pub fn current_depth() -> usize {
    CUR.with(|c| {
        let p = c.get();
        if p.is_null() {
            0
        } else {
            unsafe { (*p).depth.load(Ordering::Relaxed) }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests share the process-global registry and interner, so anything
    // that flips the enable refcount or inspects this thread's stack lives
    // in a single test body.
    #[test]
    fn stacks_record_nesting_and_survive_overflow() {
        assert!(!enabled());
        assert_eq!(current_span_id(), NO_SPAN);

        enable();
        assert!(enabled());
        let a = intern("alpha");
        let b = intern("beta");
        assert_eq!(intern("alpha"), a, "interning is idempotent");
        assert_eq!(name_of(a), "alpha");
        assert_eq!(name_of(NO_SPAN), "(no span)");

        assert!(push("alpha"));
        assert!(push("beta"));
        assert_eq!(current_span_id(), b);
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        sample_stacks(&mut out, &mut scratch);
        let mine = out
            .iter()
            .find(|(tid, _)| *tid == crate::current_tid())
            .expect("this thread's stack is registered");
        assert_eq!(mine.1, vec![a, b]);

        // Push far past MAX_DEPTH; pops must still rebalance exactly.
        for _ in 0..2 * MAX_DEPTH {
            assert!(push("deep"));
        }
        for _ in 0..2 * MAX_DEPTH {
            pop();
        }
        assert_eq!(current_span_id(), b);
        pop();
        assert_eq!(current_span_id(), a);
        pop();
        assert_eq!(current_span_id(), NO_SPAN);
        assert_eq!(current_depth(), 0);

        disable();
        assert!(!enabled());
        assert!(!push("alpha"), "disabled stacks refuse pushes");
    }
}
