//! Trace events and pluggable sinks.
//!
//! Events follow the Chrome `trace_event` JSON format (the one consumed by
//! `chrome://tracing` and Perfetto's legacy-JSON importer): each event is an
//! object with `name`, `cat`, `ph` (phase), `ts` (microseconds), `pid`, `tid`
//! and an optional `args` map. The [`ChromeTraceWriter`] sink streams events
//! one per line so a crashed process still leaves a loadable trace — Chrome's
//! importer explicitly tolerates a missing closing `]`.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::sync::Mutex;
use std::time::Duration;

/// Chrome `trace_event` phase codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `B` — begin of a duration slice.
    Begin,
    /// `E` — end of a duration slice.
    End,
    /// `i` — instantaneous event.
    Instant,
    /// `C` — counter sample.
    Counter,
    /// `M` — metadata (process/thread names).
    Meta,
    /// `P` — profiler sample (emitted by `cla-prof` when tracing is on).
    Sample,
}

impl Phase {
    /// Single-character phase code used in the JSON form.
    pub fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'i',
            Phase::Counter => 'C',
            Phase::Meta => 'M',
            Phase::Sample => 'P',
        }
    }
}

/// A field value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values render as `0`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String (JSON-escaped on output).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}
impl From<Duration> for ArgValue {
    fn from(v: Duration) -> Self {
        ArgValue::U64(v.as_micros() as u64)
    }
}

/// One trace event, ready for serialisation.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Slice / event name (groups identically-named slices in the viewer).
    pub name: String,
    /// Category string; the CLA layers use `front`, `db`, `solve`, `serve`.
    pub cat: &'static str,
    /// Phase code.
    pub ph: Phase,
    /// Timestamp in microseconds since the registry's epoch.
    pub ts_us: u64,
    /// Process id.
    pub pid: u32,
    /// Logical thread id (small sequential id, stable per OS thread).
    pub tid: u64,
    /// key=value fields shown in the viewer's detail pane.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceEvent {
    /// Serialise as a single-line Chrome `trace_event` JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"name\":\"");
        escape_json(&self.name, &mut s);
        s.push_str("\",\"cat\":\"");
        escape_json(self.cat, &mut s);
        let _ = write!(
            s,
            "\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
            self.ph.code(),
            self.ts_us,
            self.pid,
            self.tid
        );
        if self.ph == Phase::Instant {
            // Thread-scoped instant; avoids the viewer drawing a full-height line.
            s.push_str(",\"s\":\"t\"");
        }
        if !self.args.is_empty() {
            s.push_str(",\"args\":{");
            for (i, (k, v)) in self.args.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push('"');
                escape_json(k, &mut s);
                s.push_str("\":");
                match v {
                    ArgValue::U64(n) => {
                        let _ = write!(s, "{n}");
                    }
                    ArgValue::I64(n) => {
                        let _ = write!(s, "{n}");
                    }
                    ArgValue::F64(f) if f.is_finite() => {
                        let _ = write!(s, "{f}");
                    }
                    ArgValue::F64(_) => s.push('0'),
                    ArgValue::Bool(b) => {
                        let _ = write!(s, "{b}");
                    }
                    ArgValue::Str(t) => {
                        s.push('"');
                        escape_json(t, &mut s);
                        s.push('"');
                    }
                }
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

/// JSON string escaping (control characters, quote, backslash).
pub fn escape_json(input: &str, out: &mut String) {
    for c in input.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Destination for trace events. Implementations must be cheap and
/// thread-safe; `event` is called from hot paths while tracing is enabled.
pub trait TraceSink: Send + Sync {
    /// Record one event.
    fn event(&self, ev: &TraceEvent);
    /// Flush any buffering. Called on sink replacement and process exit paths.
    fn flush(&self) {}
}

/// Sink that discards everything. Useful for measuring the cost of event
/// construction itself (the disabled path never constructs events at all).
#[derive(Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn event(&self, _ev: &TraceEvent) {}
}

/// In-memory sink for tests: collects events for later inspection.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take all events recorded so far, leaving the sink empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock().expect("memory sink poisoned"))
    }
}

impl TraceSink for MemorySink {
    fn event(&self, ev: &TraceEvent) {
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(ev.clone());
    }
}

/// Streaming Chrome-trace writer: an opening `[` then one event object per
/// line, each terminated by `,`. No closing `]` is ever written — Chrome and
/// Perfetto both accept the truncated-array form, which is what makes the
/// format crash-tolerant (every completed line is already loadable).
pub struct ChromeTraceWriter {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for ChromeTraceWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChromeTraceWriter").finish_non_exhaustive()
    }
}

impl ChromeTraceWriter {
    /// Create (truncate) `path` and write the array header plus a
    /// process-name metadata event.
    pub fn create(path: &std::path::Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Self::from_writer(Box::new(file))
    }

    /// Wrap an arbitrary writer (used by tests and benches).
    pub fn from_writer(w: Box<dyn Write + Send>) -> io::Result<Self> {
        let mut out = BufWriter::new(w);
        out.write_all(b"[\n")?;
        let meta = TraceEvent {
            name: "process_name".to_string(),
            cat: "__metadata",
            ph: Phase::Meta,
            ts_us: 0,
            pid: std::process::id(),
            tid: 0,
            args: vec![("name", ArgValue::Str("cla".to_string()))],
        };
        out.write_all(meta.to_json().as_bytes())?;
        out.write_all(b",\n")?;
        out.flush()?;
        Ok(Self {
            out: Mutex::new(out),
        })
    }
}

impl TraceSink for ChromeTraceWriter {
    fn event(&self, ev: &TraceEvent) {
        let line = ev.to_json();
        let mut out = self.out.lock().expect("trace writer poisoned");
        // Event rates are modest (per file / pass / query), so flush per
        // event to keep the file loadable at any moment.
        let _ = out.write_all(line.as_bytes());
        let _ = out.write_all(b",\n");
        let _ = out.flush();
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("trace writer poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_shape() {
        let ev = TraceEvent {
            name: "pp".to_string(),
            cat: "front",
            ph: Phase::Begin,
            ts_us: 42,
            pid: 1,
            tid: 2,
            args: vec![
                ("file", ArgValue::Str("a\"b.c".to_string())),
                ("n", ArgValue::U64(7)),
            ],
        };
        assert_eq!(
            ev.to_json(),
            "{\"name\":\"pp\",\"cat\":\"front\",\"ph\":\"B\",\"ts\":42,\"pid\":1,\"tid\":2,\
             \"args\":{\"file\":\"a\\\"b.c\",\"n\":7}}"
        );
    }

    #[test]
    fn instant_events_are_thread_scoped() {
        let ev = TraceEvent {
            name: "slow".to_string(),
            cat: "serve",
            ph: Phase::Instant,
            ts_us: 1,
            pid: 1,
            tid: 1,
            args: vec![],
        };
        assert!(ev.to_json().contains("\"s\":\"t\""));
    }

    #[test]
    fn escaping_covers_control_chars() {
        let mut out = String::new();
        escape_json("a\nb\t\u{1}\\\"", &mut out);
        assert_eq!(out, "a\\nb\\t\\u0001\\\\\\\"");
    }
}
