//! `cla-obs` — zero-dependency observability for the CLA pipeline.
//!
//! Three primitives, all std-only and `Send + Sync`:
//!
//! - **Spans** ([`Span`]): scoped timers that nest (per thread), carry
//!   `key=value` fields, and emit Chrome `trace_event` begin/end pairs when a
//!   trace sink is installed. A span *always* measures wall time (its
//!   [`Span::finish`] duration feeds `Report` phase times) but constructs no
//!   event and takes no lock when tracing is off — the disabled cost is one
//!   `Instant::now()` plus one relaxed atomic load.
//! - **Counters** ([`Counter`]): relaxed atomic monotonic counters. Call
//!   sites cache the handle, so the hot path is a single `fetch_add`.
//! - **Histograms** ([`Histogram`]): fixed-bucket, lock-free latency/size
//!   distributions. [`Gauge`]s cover last-value readings (queue depths,
//!   high-water marks).
//!
//! When the [`spanstack`] refcount is raised (by the `cla-prof` sampling
//! profiler or its counting allocator), every span additionally maintains a
//! per-thread stack of interned names that other threads can snapshot;
//! while nothing is profiling, that costs one relaxed atomic load per span.
//!
//! Sinks are pluggable via [`TraceSink`]: [`ChromeTraceWriter`] streams a
//! `chrome://tracing` / Perfetto-loadable JSON trace, [`MemorySink`] collects
//! events for tests, [`NoopSink`] discards them. Metrics render to the
//! Prometheus text exposition format via [`Obs::prometheus_text`] and
//! round-trip through [`parse_exposition`].
//!
//! The process-wide registry is [`global()`]; library crates instrument
//! against it unconditionally and the binary decides whether any sink is
//! attached.

mod metrics;
pub mod spanstack;
mod trace;

pub use metrics::{
    escape_label_value, nearest_rank, parse_exposition, peak_rss_bytes, Counter, Gauge, Histogram,
    Sample, LATENCY_BUCKETS_US,
};
pub use trace::{
    escape_json, ArgValue, ChromeTraceWriter, MemorySink, NoopSink, Phase, TraceEvent, TraceSink,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// A registered metric: counter, gauge, or histogram.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Registry key: metric name plus a pre-rendered, sorted label string
/// (`key="value",...`, exposition-escaped). Ordering the map by this pair
/// keeps the rendered exposition deterministic.
type MetricKey = (String, String);

/// Observability registry: the metric namespace plus the (optional) trace
/// sink. One global instance lives for the process ([`global()`]); tests may
/// build private ones.
pub struct Obs {
    epoch: Instant,
    trace_on: AtomicBool,
    sink: RwLock<Option<Arc<dyn TraceSink>>>,
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("tracing", &self.tracing())
            .finish_non_exhaustive()
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// The process-wide registry. Library crates record against this; binaries
/// decide whether to attach a sink or render metrics.
pub fn global() -> &'static Obs {
    GLOBAL.get_or_init(Obs::new)
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Small sequential id for the current OS thread (stable for its lifetime).
pub fn current_tid() -> u64 {
    TID.with(|t| *t)
}

impl Obs {
    /// New empty registry with its own time epoch.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            trace_on: AtomicBool::new(false),
            sink: RwLock::new(None),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Microseconds since this registry was created (trace timestamp base).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Is a trace sink currently attached?
    pub fn tracing(&self) -> bool {
        self.trace_on.load(Ordering::Relaxed)
    }

    /// Install (or with `None`, remove) the trace sink. The previous sink is
    /// flushed before being dropped.
    pub fn set_trace_sink(&self, sink: Option<Arc<dyn TraceSink>>) {
        let mut slot = self.sink.write().expect("obs sink lock poisoned");
        if let Some(old) = slot.take() {
            old.flush();
        }
        self.trace_on.store(sink.is_some(), Ordering::Relaxed);
        *slot = sink;
    }

    /// Flush the attached sink, if any.
    pub fn flush_trace(&self) {
        if let Some(sink) = &*self.sink.read().expect("obs sink lock poisoned") {
            sink.flush();
        }
    }

    fn emit(&self, ev: &TraceEvent) {
        if let Some(sink) = &*self.sink.read().expect("obs sink lock poisoned") {
            sink.event(ev);
        }
    }

    /// Send a fully-formed event to the attached sink (no-op when tracing
    /// is off). Used by out-of-crate emitters such as the `cla-prof`
    /// sampler, whose events do not fit the span/instant helpers.
    pub fn emit_event(&self, ev: &TraceEvent) {
        if self.tracing() {
            self.emit(ev);
        }
    }

    /// Start a span named `name` under category `cat`. The guard emits a
    /// begin event now (if tracing) and an end event carrying any fields set
    /// with [`Span::set`] when dropped or [`Span::finish`]ed.
    pub fn span(&self, cat: &'static str, name: &'static str) -> Span<'_> {
        let emit = self.tracing();
        if emit {
            self.emit(&TraceEvent {
                name: name.to_string(),
                cat,
                ph: Phase::Begin,
                ts_us: self.now_us(),
                pid: std::process::id(),
                tid: current_tid(),
                args: Vec::new(),
            });
        }
        let pushed = spanstack::push(name);
        Span {
            obs: self,
            cat,
            name,
            start: Instant::now(),
            emit,
            pushed,
            args: Vec::new(),
            done: false,
        }
    }

    /// Emit an instantaneous event (no duration), e.g. a slow-query marker.
    pub fn instant(&self, cat: &'static str, name: &str, args: Vec<(&'static str, ArgValue)>) {
        if !self.tracing() {
            return;
        }
        self.emit(&TraceEvent {
            name: name.to_string(),
            cat,
            ph: Phase::Instant,
            ts_us: self.now_us(),
            pid: std::process::id(),
            tid: current_tid(),
            args,
        });
    }

    /// Get or register the unlabelled counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Get or register counter `name` with the given label pairs.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = (name.to_string(), render_labels(labels));
        let mut map = self.metrics.lock().expect("obs metrics lock poisoned");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Get or register the unlabelled gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Get or register gauge `name` with the given label pairs.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = (name.to_string(), render_labels(labels));
        let mut map = self.metrics.lock().expect("obs metrics lock poisoned");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Get or register histogram `name` with the given labels and finite
    /// bucket upper bounds (`bounds` is only used on first registration).
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        let key = (name.to_string(), render_labels(labels));
        let mut map = self.metrics.lock().expect("obs metrics lock poisoned");
        match map
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with another type"),
        }
    }

    /// Render every registered metric in the Prometheus text exposition
    /// format: one `# TYPE` line per metric name, counters as single
    /// samples, histograms as cumulative `_bucket{le=...}` series plus
    /// `_sum` and `_count`.
    pub fn prometheus_text(&self) -> String {
        // Process-level gauges are refreshed at scrape time so they are
        // always present and current in the exposition, matching the
        // figures `SessionStats` reports.
        self.gauge("cla_process_peak_rss_bytes")
            .set(peak_rss_bytes());
        let snapshot: Vec<(MetricKey, Metric)> = {
            let map = self.metrics.lock().expect("obs metrics lock poisoned");
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let mut out = String::new();
        let mut last_typed: Option<String> = None;
        for ((name, labels), metric) in snapshot {
            if last_typed.as_deref() != Some(name.as_str()) {
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str("# TYPE ");
                out.push_str(&name);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
                last_typed = Some(name.clone());
            }
            match metric {
                Metric::Counter(c) => {
                    metrics::render_sample_line(&mut out, &name, &labels, None, c.get());
                }
                Metric::Gauge(g) => {
                    metrics::render_sample_line(&mut out, &name, &labels, None, g.get());
                }
                Metric::Histogram(h) => {
                    let bucket_name = format!("{name}_bucket");
                    let cumulative = h.cumulative();
                    let bounds = h.bounds();
                    for (i, cum) in cumulative.iter().enumerate() {
                        let le = match bounds.get(i) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        metrics::render_sample_line(
                            &mut out,
                            &bucket_name,
                            &labels,
                            Some(("le", &le)),
                            *cum,
                        );
                    }
                    metrics::render_sample_line(
                        &mut out,
                        &format!("{name}_sum"),
                        &labels,
                        None,
                        h.sum(),
                    );
                    metrics::render_sample_line(
                        &mut out,
                        &format!("{name}_count"),
                        &labels,
                        None,
                        h.count(),
                    );
                }
            }
        }
        out
    }
}

/// Render label pairs into the canonical sorted `k="v",...` form.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<&(&str, &str)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut out = String::new();
    for (i, (k, v)) in sorted.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(v, &mut out);
        out.push('"');
    }
    out
}

/// Scoped timer guard returned by [`Obs::span`]. Always measures wall time;
/// emits a Chrome begin/end pair only when tracing was enabled at creation.
/// Fields set with [`set`](Span::set) are attached to the end event.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
#[derive(Debug)]
pub struct Span<'a> {
    obs: &'a Obs,
    cat: &'static str,
    name: &'static str,
    start: Instant,
    emit: bool,
    pushed: bool,
    args: Vec<(&'static str, ArgValue)>,
    done: bool,
}

impl Span<'_> {
    /// Attach a `key=value` field (shown on the trace slice). Cheap no-op
    /// when the span is not being emitted.
    pub fn set(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.emit {
            self.args.push((key, value.into()));
        }
    }

    /// Wall time elapsed since the span started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// End the span now, returning its duration (used to feed `Report`
    /// phase times from the same clock that produced the trace).
    pub fn finish(mut self) -> Duration {
        self.close();
        self.start.elapsed()
    }

    fn close(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        if self.pushed {
            // Pop only what this guard pushed: a profiler attaching mid-span
            // sees spans opened before it started simply as absent frames.
            spanstack::pop();
        }
        if self.emit {
            self.obs.emit(&TraceEvent {
                name: self.name.to_string(),
                cat: self.cat,
                ph: Phase::End,
                ts_us: self.obs.now_us(),
                pid: std::process::id(),
                tid: current_tid(),
                args: std::mem::take(&mut self.args),
            });
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_emit_balanced_pairs_with_fields() {
        let obs = Obs::new();
        let sink = Arc::new(MemorySink::new());
        obs.set_trace_sink(Some(sink.clone()));
        {
            let mut outer = obs.span("t", "outer");
            outer.set("k", 7u64);
            let inner = obs.span("t", "inner");
            drop(inner);
        }
        obs.set_trace_sink(None);
        let evs = sink.take();
        let kinds: Vec<(char, &str)> = evs.iter().map(|e| (e.ph.code(), e.name.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                ('B', "outer"),
                ('B', "inner"),
                ('E', "inner"),
                ('E', "outer")
            ]
        );
        // Fields ride on the end event.
        assert_eq!(evs[3].args, vec![("k", ArgValue::U64(7))]);
        // All on one thread, timestamps monotone.
        assert!(evs
            .windows(2)
            .all(|w| w[0].ts_us <= w[1].ts_us && w[0].tid == w[1].tid));
    }

    #[test]
    fn disabled_spans_still_measure_time() {
        let obs = Obs::new();
        assert!(!obs.tracing());
        let sp = obs.span("t", "x");
        std::thread::sleep(Duration::from_millis(2));
        assert!(sp.finish() >= Duration::from_millis(2));
    }

    #[test]
    fn counters_are_shared_by_name_and_labels() {
        let obs = Obs::new();
        obs.counter("a_total").add(2);
        obs.counter("a_total").inc();
        assert_eq!(obs.counter("a_total").get(), 3);
        obs.counter_with("b_total", &[("s", "x")]).inc();
        assert_eq!(obs.counter_with("b_total", &[("s", "x")]).get(), 1);
        assert_eq!(obs.counter_with("b_total", &[("s", "y")]).get(), 0);
    }

    #[test]
    fn prometheus_text_round_trips_through_parser() {
        let obs = Obs::new();
        obs.counter("cla_x_total").add(5);
        obs.counter_with("cla_y_total", &[("section", "static")])
            .add(2);
        obs.counter_with("cla_y_total", &[("section", "dynamic")])
            .add(3);
        let h = obs.histogram_with("cla_lat_us", &[("cmd", "alias")], &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5000);
        obs.gauge("cla_serve_slow_log_depth").set(4);
        let text = obs.prometheus_text();
        // One TYPE line per metric name, even with several label sets.
        assert_eq!(text.matches("# TYPE cla_y_total counter").count(), 1);
        assert!(text.contains("# TYPE cla_lat_us histogram"));
        assert!(text.contains("# TYPE cla_serve_slow_log_depth gauge"));
        // The process peak-RSS gauge is refreshed at render time.
        assert!(text.contains("# TYPE cla_process_peak_rss_bytes gauge"));
        let samples = parse_exposition(&text).expect("rendered exposition must parse");
        let find = |name: &str, label: Option<(&str, &str)>| -> f64 {
            samples
                .iter()
                .find(|s| {
                    s.name == name
                        && label
                            .is_none_or(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
                })
                .unwrap_or_else(|| panic!("missing sample {name}"))
                .value
        };
        assert_eq!(find("cla_x_total", None), 5.0);
        assert_eq!(find("cla_y_total", Some(("section", "static"))), 2.0);
        assert_eq!(find("cla_serve_slow_log_depth", None), 4.0);
        // The high-water mark can only grow between render and now.
        assert!(find("cla_process_peak_rss_bytes", None) as u64 <= peak_rss_bytes());
        assert_eq!(find("cla_lat_us_count", None), 3.0);
        assert_eq!(find("cla_lat_us_bucket", Some(("le", "+Inf"))), 3.0);
        assert_eq!(find("cla_lat_us_bucket", Some(("le", "10"))), 1.0);
        assert_eq!(find("cla_lat_us_sum", None), 5055.0);
    }

    #[test]
    fn threads_get_distinct_tids() {
        let a = current_tid();
        let b = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, b);
    }
}
