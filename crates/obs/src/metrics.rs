//! Counters, fixed-bucket histograms, percentile math, and the Prometheus
//! text exposition renderer/parser.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic counter. Cloning shares the underlying cell, so call sites can
/// cache a handle once (no registry lookup on the hot path).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// New counter starting at zero (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value gauge (set rather than added). Cloning shares the cell, like
/// [`Counter`]; used for level-style readings such as the slow-query log
/// depth or the peak-RSS high-water mark.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// New gauge starting at zero (detached from any registry).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the current value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to at least `v` (monotone high-water mark).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The process's peak resident set size (max RSS high-water mark) in
/// bytes, read from `/proc/self/status` (`VmHWM`). Returns 0 on platforms
/// without procfs — callers treat 0 as "unavailable", never as a
/// measurement. This is the figure the million-line bench records to show
/// that the streaming link's memory stays proportional to one compiled
/// unit rather than the whole codebase.
#[must_use]
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Default bucket upper bounds for latency histograms, in microseconds.
/// Roughly 2.5x steps from 1µs to 4s, 16 finite buckets plus overflow.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 10_000, 50_000, 250_000, 1_000_000, 4_000_000,
];

#[derive(Debug)]
struct HistogramInner {
    /// Finite bucket upper bounds, strictly increasing.
    bounds: Box<[u64]>,
    /// One slot per finite bound plus a final overflow (`+Inf`) slot.
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// Fixed-bucket, lock-free histogram (`Send + Sync`; `observe` is a couple of
/// relaxed atomic adds). Cloning shares the underlying cells.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// New histogram with the given finite bucket upper bounds (must be
    /// non-empty and strictly increasing).
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must increase"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds: bounds.into(),
                counts,
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let inner = &*self.inner;
        let slot = inner.bounds.partition_point(|&b| b < v);
        inner.counts[slot].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Finite bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.inner.bounds
    }

    /// Cumulative count per bucket, one entry per finite bound plus the
    /// `+Inf` bucket (which equals `count()` up to racing writers).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0u64;
        self.inner
            .counts
            .iter()
            .map(|c| {
                acc += c.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }

    /// Nearest-rank percentile estimate, resolved to a bucket upper bound
    /// (`u64::MAX` when the rank falls in the overflow bucket). `p` is in
    /// `[0, 1]`. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = nearest_rank_index(total as usize, p) as u64 + 1;
        let mut acc = 0u64;
        for (i, c) in self.inner.counts.iter().enumerate() {
            acc += c.load(Ordering::Relaxed);
            if acc >= rank {
                return self.inner.bounds.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

/// Zero-based index of the nearest-rank percentile in a sorted sample of
/// `len` items: `ceil(p * len) - 1`, clamped to the valid range.
fn nearest_rank_index(len: usize, p: f64) -> usize {
    debug_assert!(len > 0);
    let p = p.clamp(0.0, 1.0);
    let rank = (p * len as f64).ceil() as usize;
    rank.clamp(1, len) - 1
}

/// Nearest-rank percentile of a sorted sample: the smallest value such that
/// at least `p * 100` percent of the samples are `<=` it. Returns 0 for an
/// empty slice.
pub fn nearest_rank(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[nearest_rank_index(sorted.len(), p)]
}

/// One parsed sample line from a Prometheus text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// Parse a Prometheus text exposition (the format rendered by
/// [`crate::Obs::prometheus_text`]). Comment/`# TYPE`/`# HELP` lines are
/// skipped. Returns an error describing the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(out)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, labels, value_part) = if let Some(brace) = line.find('{') {
        let close = line.rfind('}').ok_or("unterminated label set")?;
        if close < brace {
            return Err("unterminated label set".to_string());
        }
        (
            &line[..brace],
            parse_labels(&line[brace + 1..close])?,
            line[close + 1..].trim(),
        )
    } else {
        let sp = line.find(' ').ok_or("missing value")?;
        (&line[..sp], Vec::new(), line[sp..].trim())
    };
    let name = name_part.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name {name:?}"));
    }
    let value: f64 = match value_part {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().map_err(|_| format!("bad value {v:?}"))?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = s.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(',') | Some(' ')) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key:?}: expected opening quote"));
        }
        let mut val = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('n') => val.push('\n'),
                    Some(c) => val.push(c),
                    None => return Err("dangling escape in label value".to_string()),
                },
                Some('"') => break,
                Some(c) => val.push(c),
                None => return Err("unterminated label value".to_string()),
            }
        }
        labels.push((key.trim().to_string(), val));
    }
}

/// Escape a label value for the text exposition format.
pub fn escape_label_value(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Render one sample line (`name{labels} value`) into `out`.
pub(crate) fn render_sample_line(
    out: &mut String,
    name: &str,
    labels: &str,
    extra_label: Option<(&str, &str)>,
    value: u64,
) {
    out.push_str(name);
    let has_labels = !labels.is_empty() || extra_label.is_some();
    if has_labels {
        out.push('{');
        out.push_str(labels);
        if let Some((k, v)) = extra_label {
            if !labels.is_empty() {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(v, out);
            out.push('"');
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn gauge_sets_and_tracks_high_water() {
        let g = Gauge::new();
        g.set(5);
        let g2 = g.clone();
        g2.set(3);
        assert_eq!(g.get(), 3);
        g.set_max(10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn nearest_rank_matches_reference_example() {
        // The classic worked example: ordered list 15, 20, 35, 40, 50.
        let s = [15, 20, 35, 40, 50];
        assert_eq!(nearest_rank(&s, 0.05), 15);
        assert_eq!(nearest_rank(&s, 0.30), 20);
        assert_eq!(nearest_rank(&s, 0.40), 20);
        assert_eq!(nearest_rank(&s, 0.50), 35);
        assert_eq!(nearest_rank(&s, 0.90), 50);
        assert_eq!(nearest_rank(&s, 1.00), 50);
    }

    #[test]
    fn nearest_rank_edge_cases() {
        assert_eq!(nearest_rank(&[], 0.5), 0);
        assert_eq!(nearest_rank(&[7], 0.0), 7);
        assert_eq!(nearest_rank(&[7], 1.0), 7);
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&s, 0.50), 50);
        assert_eq!(nearest_rank(&s, 0.90), 90);
        assert_eq!(nearest_rank(&s, 0.99), 99);
        // p is clamped, not an error.
        assert_eq!(nearest_rank(&s, 1.5), 100);
        assert_eq!(nearest_rank(&s, -0.2), 1);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [1, 5, 50, 500, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5556);
        assert_eq!(h.cumulative(), vec![2, 3, 4, 5]);
        // Ranks resolve to bucket upper bounds.
        assert_eq!(h.percentile(0.20), 10);
        assert_eq!(h.percentile(0.50), 100);
        assert_eq!(h.percentile(0.75), 1000);
        assert_eq!(h.percentile(1.0), u64::MAX); // overflow bucket
        assert_eq!(Histogram::new(&[10]).percentile(0.5), 0);
    }

    #[test]
    fn exposition_parser_handles_labels_and_escapes() {
        let text = "# TYPE x counter\nx 3\ny{a=\"b\",c=\"d\\\"e\"} 4.5\nz{le=\"+Inf\"} 9\n";
        let samples = parse_exposition(text).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(
            samples[0],
            Sample {
                name: "x".into(),
                labels: vec![],
                value: 3.0
            }
        );
        assert_eq!(
            samples[1].labels,
            vec![("a".into(), "b".into()), ("c".into(), "d\"e".into())]
        );
        assert_eq!(samples[2].labels, vec![("le".into(), "+Inf".into())]);
    }

    #[test]
    fn exposition_parser_rejects_garbage() {
        assert!(parse_exposition("novalue\n").is_err());
        assert!(parse_exposition("x{a=\"b\" 3\n").is_err());
        assert!(parse_exposition("x nan-ish\n").is_err());
    }
}
