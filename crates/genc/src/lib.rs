//! # cla-genc — declarative million-line C codebase generator
//!
//! The paper's headline is a *rate*: a million lines of C analyzed in about
//! a second. Reproducing the rate needs a million-line input, and none of
//! the paper's benchmarks ship with this repository — so this crate grows
//! one. A [`Profile`] declares the shape of a codebase (total LOC, file
//! count, call-graph fan-out and depth, pointer density, struct mix,
//! indirect-call rate, global traffic) and [`generate_to_dir`] turns it
//! into a real multi-file C tree, deterministically for a given seed,
//! streaming one file at a time so peak memory never scales with the
//! codebase.
//!
//! The shipped profiles live in `profiles/`: `million.toml` (the headline
//! input, ≥1M lines over hundreds of files) and `ci-small.toml` (the same
//! shape at PR-gate scale). `cla-tool gen profiles/ci-small.toml --out DIR`
//! is the CLI entry point, and `examples/million_bench.rs` runs the full
//! generate → compile → link → analyze pipeline against the result.
//!
//! [`Measure`] closes the loop: it re-derives LOC, pointer density, and
//! call rates from the emitted text, and the generator steers emission with
//! the same classifier, so every shipped profile is checked against what
//! the generator actually wrote. Rates are text-level by declaration — for
//! example, the hidden pointer copy a function's `…_keep = a;` epilogue
//! performs is counted as plain traffic by both sides of the contract.
//!
//! ```
//! use cla_genc::{generate_with, Measure, Profile};
//!
//! let profile = Profile::parse("total_loc = 2000\nfiles = 3\n").unwrap();
//! let mut m = Measure::default();
//! let report = generate_with(&profile, 42, &mut |_name, text| {
//!     m.add_source(text);
//!     Ok(())
//! })
//! .unwrap();
//! assert!(report.loc >= 2000);
//! assert_eq!(report.loc, m.loc);
//! ```

mod gen;
mod measure;
mod profile;

pub use gen::{file_name, generate_to_dir, generate_with, GenReport, HEADER_NAME};
pub use measure::{classify_line, is_pointer_name, measure_tree, Measure, StmtClass};
pub use profile::{Profile, ProfileError};

#[cfg(test)]
mod tests {
    use super::*;
    use cla_cfront::{MemoryFs, PpOptions};
    use cla_ir::{compile_file, LowerOptions};

    /// Every construct the generator emits must stay inside the C subset the
    /// front end proves out: generate a small tree and push every file
    /// through the real compile phase.
    #[test]
    fn generated_tree_compiles_and_lowers() {
        let profile = Profile::parse(
            "name = \"sub\"\ntotal_loc = 3000\nfiles = 4\npointer_density = 0.5\n\
             indirect_call_rate = 0.1\nglobal_traffic = 0.2\nstruct_field_ptr_mix = 0.75\n",
        )
        .unwrap();
        let mut fs = MemoryFs::new();
        let mut names = Vec::new();
        generate_with(&profile, 11, &mut |name, text| {
            if name.ends_with(".c") {
                names.push(name.to_owned());
            }
            fs.add(name.to_owned(), text.to_owned());
            Ok(())
        })
        .unwrap();
        assert_eq!(names.len(), 4);
        let mut assigns = 0usize;
        for name in &names {
            let (unit, _) =
                compile_file(&fs, name, &PpOptions::default(), &LowerOptions::default())
                    .unwrap_or_else(|e| panic!("{name}: generated code failed to compile: {e}"));
            assigns += unit.assigns.len();
        }
        assert!(assigns > 500, "suspiciously few assignments: {assigns}");
    }

    /// The declared rates hold on the emitted text, per the measurer.
    #[test]
    fn emitted_rates_track_the_profile() {
        let profile = Profile::parse(
            "total_loc = 20000\nfiles = 6\npointer_density = 0.4\n\
             indirect_call_rate = 0.05\ncall_fanout = 2.5\n",
        )
        .unwrap();
        let mut m = Measure::default();
        generate_with(&profile, 5, &mut |_, text| {
            m.add_source(text);
            Ok(())
        })
        .unwrap();
        assert!(
            (m.pointer_density() - 0.4).abs() < 0.03,
            "pointer density {}",
            m.pointer_density()
        );
        assert!(
            (m.indirect_call_rate() - 0.05).abs() < 0.02,
            "indirect rate {}",
            m.indirect_call_rate()
        );
        assert!(
            (m.call_fanout() - 2.5).abs() < 0.5,
            "fanout {}",
            m.call_fanout()
        );
    }
}
