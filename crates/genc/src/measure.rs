//! Conformance measurement for generated trees.
//!
//! The generator promises that the code it writes matches the profile it was
//! given. This module checks that promise *from the text on disk*, not from
//! the generator's internal bookkeeping: it re-derives LOC, statement
//! counts, pointer density, and call rates by scanning the emitted C.
//! The generator steers its emission with the same classifier
//! ([`classify_line`]), so measured rates converge on the declared knobs by
//! construction rather than by tuning fudge factors.

use std::io;
use std::path::Path;

/// What a single body line is, as far as the profile knobs care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtClass {
    /// A direct call statement (`p = x3_0(q);`).
    DirectCall,
    /// An indirect call through a function-pointer global (`p = fp2(q);`).
    IndirectCall,
    /// A statement that moves pointers (`p = &x;`, `*q = p;`, `s.fp0 = p;`).
    Pointer,
    /// Plain integer traffic (`x = y + z;`, `if (x) { y = z; }`).
    Int,
}

/// Classifies one trimmed line that sits inside a function body.
/// Returns `None` for lines that are not mix statements (returns, braces,
/// blank lines) — those are excluded from every rate the profile declares.
#[must_use]
pub fn classify_line(trimmed: &str) -> Option<StmtClass> {
    if trimmed.is_empty() || trimmed == "}" || trimmed == "};" || trimmed.starts_with("return") {
        return None;
    }
    if trimmed.starts_with("if ") || trimmed.starts_with("for ") {
        return Some(StmtClass::Int);
    }
    if trimmed.ends_with(");") && trimmed.contains('(') {
        let callee = match trimmed.split_once('=') {
            Some((_, rhs)) => rhs.trim_start(),
            None => trimmed,
        };
        if callee.starts_with("fp") {
            return Some(StmtClass::IndirectCall);
        }
        return Some(StmtClass::DirectCall);
    }
    if trimmed.contains('&')
        || trimmed.contains('*')
        || trimmed.contains("->")
        || trimmed.contains(".fp")
    {
        return Some(StmtClass::Pointer);
    }
    if !trimmed.ends_with(';') {
        return None;
    }
    // Plain pointer copies carry no operator marker; the generator's naming
    // convention (`p…`/`q…`/`gp…`/`gq…`/`fp…` are pointers) disambiguates.
    if let Some((dst, _)) = trimmed.split_once('=') {
        if is_pointer_name(dst.trim()) {
            return Some(StmtClass::Pointer);
        }
    }
    Some(StmtClass::Int)
}

/// Whether an identifier names a pointer under the generator's conventions:
/// `p3_1`, `q3_0` (locals), `gp7`, `gq2` (globals), `fp4` (function
/// pointers).
#[must_use]
pub fn is_pointer_name(name: &str) -> bool {
    let rest = ["gp", "gq", "fp", "p", "q"]
        .iter()
        .find_map(|pre| name.strip_prefix(pre));
    match rest {
        Some(rest) => !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit() || c == '_'),
        None => false,
    }
}

/// Aggregate measurements over one or more source files.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Measure {
    /// Files scanned.
    pub files: usize,
    /// Non-blank physical lines.
    pub loc: usize,
    /// Mix statements inside function bodies (calls included).
    pub statements: usize,
    /// Statements classified as pointer-moving.
    pub pointer_stmts: usize,
    /// Call statements, direct and indirect.
    pub calls: usize,
    /// Calls routed through a function-pointer global.
    pub indirect_calls: usize,
    /// Function definitions.
    pub functions: usize,
}

impl Measure {
    /// Scans one source file's text and accumulates its counts.
    pub fn add_source(&mut self, text: &str) {
        self.files += 1;
        let mut depth = 0usize;
        // Struct definitions also nest braces; only classify inside regions
        // opened by a line with a parameter list (a function body).
        let mut in_function = false;
        for raw in text.lines() {
            let line = raw.trim();
            if !line.is_empty() {
                self.loc += 1;
            }
            if depth > 0 && in_function {
                match classify_line(line) {
                    Some(StmtClass::DirectCall) => {
                        self.statements += 1;
                        self.calls += 1;
                    }
                    Some(StmtClass::IndirectCall) => {
                        self.statements += 1;
                        self.calls += 1;
                        self.indirect_calls += 1;
                    }
                    Some(StmtClass::Pointer) => {
                        self.statements += 1;
                        self.pointer_stmts += 1;
                    }
                    Some(StmtClass::Int) => self.statements += 1,
                    None => {}
                }
            }
            if depth == 0 && line.ends_with('{') {
                in_function = line.contains('(');
                if in_function {
                    self.functions += 1;
                }
            }
            let opens = line.matches('{').count();
            let closes = line.matches('}').count();
            depth = (depth + opens).saturating_sub(closes);
        }
    }

    /// Pointer-moving fraction of non-call body statements.
    /// This is what a profile's `pointer_density` declares.
    #[must_use]
    pub fn pointer_density(&self) -> f64 {
        let base = self.statements - self.calls;
        if base == 0 {
            return 0.0;
        }
        self.pointer_stmts as f64 / base as f64
    }

    /// Indirect fraction of all call statements
    /// (a profile's `indirect_call_rate`).
    #[must_use]
    pub fn indirect_call_rate(&self) -> f64 {
        if self.calls == 0 {
            return 0.0;
        }
        self.indirect_calls as f64 / self.calls as f64
    }

    /// Average calls per function definition (a profile's `call_fanout`).
    #[must_use]
    pub fn call_fanout(&self) -> f64 {
        if self.functions == 0 {
            return 0.0;
        }
        self.calls as f64 / self.functions as f64
    }
}

/// Measures every `.c` and `.h` file in a generated tree. Statement
/// classification only ever fires inside function bodies, so including the
/// header affects nothing but the LOC count.
pub fn measure_tree(dir: &Path) -> io::Result<Measure> {
    let mut m = Measure::default();
    let mut names: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("c") | Some("h")
            )
        })
        .collect();
    names.sort();
    for path in names {
        m.add_source(&std::fs::read_to_string(path)?);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_the_generator_statement_forms() {
        assert_eq!(classify_line("p0_1 = &i0_2;"), Some(StmtClass::Pointer));
        assert_eq!(classify_line("*q0_0 = p0_1;"), Some(StmtClass::Pointer));
        assert_eq!(classify_line("p0_1 = *q0_0;"), Some(StmtClass::Pointer));
        assert_eq!(classify_line("gs3.fp0 = p0_1;"), Some(StmtClass::Pointer));
        assert_eq!(
            classify_line("gsp2 = gsp2->next;"),
            Some(StmtClass::Pointer)
        );
        assert_eq!(classify_line("fp3 = x4_1;"), Some(StmtClass::Pointer));
        assert_eq!(classify_line("p0_1 = p0_0;"), Some(StmtClass::Pointer));
        assert_eq!(classify_line("gp3 = gp1;"), Some(StmtClass::Pointer));
        assert_eq!(classify_line("x0_0_keep = a;"), Some(StmtClass::Int));
        assert_eq!(
            classify_line("p0_1 = x4_0(p0_2);"),
            Some(StmtClass::DirectCall)
        );
        assert_eq!(
            classify_line("p0_1 = fp7(p0_2);"),
            Some(StmtClass::IndirectCall)
        );
        assert_eq!(classify_line("i0_1 = i0_2 + i0_3;"), Some(StmtClass::Int));
        assert_eq!(
            classify_line("if (i0_1) { i0_2 = i0_3; }"),
            Some(StmtClass::Int)
        );
        assert_eq!(classify_line("return &x0_0_own;"), None);
        assert_eq!(classify_line("}"), None);
    }

    #[test]
    fn measures_a_tiny_body() {
        let src =
            "int gi0;\nint *f(int *a) {\n    gi0 = gi0 + 1;\n    a = &gi0;\n    return a;\n}\n";
        let mut m = Measure::default();
        m.add_source(src);
        assert_eq!(m.functions, 1);
        assert_eq!(m.statements, 2);
        assert_eq!(m.pointer_stmts, 1);
        assert_eq!(m.loc, 6);
        assert!((m.pointer_density() - 0.5).abs() < 1e-9);
    }
}
