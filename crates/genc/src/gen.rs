//! The streaming codebase generator.
//!
//! One file is rendered at a time into a single `String` and handed to the
//! sink; nothing global is retained beyond small bookkeeping (a few counters
//! and the struct-field spoke caps), so peak memory is proportional to one
//! file, not the codebase. Every random draw comes from a [`SplitMix64`]
//! stream seeded from `(seed, file index)`, which makes the tree a pure
//! function of `(profile, seed)` — byte for byte.
//!
//! ## Shape control
//!
//! The profile's rates (`pointer_density`, `indirect_call_rate`,
//! `call_fanout`, `cross_file_fraction`) are enforced by *thermostats*: the
//! generator classifies every body line it emits with the same
//! [`classify_line`] the conformance measurer uses, and emits whichever
//! statement class is currently below its declared rate. Measured rates
//! therefore converge on the declared knobs by construction.
//!
//! ## Conflation control
//!
//! A million lines of unconstrained pointer soup would drive any
//! inclusion-based solver quadratic. Like real programs — and like
//! `cla-workload` — the generator keeps points-to sets sparse: pointer
//! copies stay inside small clusters, `**`-level traffic is confined to
//! per-pointer association windows, each function-pointer global receives
//! exactly two targets, and struct-field spokes are capped globally.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use cla_workload::SplitMix64;

use crate::measure::{classify_line, StmtClass};
use crate::profile::Profile;

/// Shared header every generated file includes.
pub const HEADER_NAME: &str = "genc.h";

/// Exported (header-visible) functions per file.
const EXPORTS: usize = 3;
/// `int **` association-window width.
const WINDOW: usize = 4;
/// Pointer-copy cluster width.
const CLUSTER: usize = 8;
/// Maximum statements routed through any one struct field, tree-wide.
const SPOKE_CAP: u32 = 6;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// What [`generate_with`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenReport {
    /// Profile name the tree was generated from.
    pub name: String,
    /// Seed the tree was generated with.
    pub seed: u64,
    /// Source files emitted (excluding the shared header).
    pub files: usize,
    /// Non-blank physical lines across all emitted files, header included.
    pub loc: usize,
    /// Total bytes emitted.
    pub bytes: u64,
    /// Function definitions emitted.
    pub functions: usize,
    /// Body statements emitted (calls included).
    pub statements: usize,
    /// FNV-1a over every `(name, content)` pair in emission order; two trees
    /// are byte-identical iff their hashes agree.
    pub tree_hash: u64,
}

/// Name of generated file `index` under `profile`.
#[must_use]
pub fn file_name(profile: &Profile, index: usize) -> String {
    format!("{}_{index:04}.c", profile.name)
}

/// Generates the tree into `dir` (created if missing), one file at a time.
pub fn generate_to_dir(profile: &Profile, seed: u64, dir: &Path) -> io::Result<GenReport> {
    std::fs::create_dir_all(dir)?;
    generate_with(profile, seed, &mut |name, text| {
        std::fs::write(dir.join(name), text)
    })
}

/// Generates the tree, streaming each `(file name, content)` pair to `sink`
/// as soon as it is rendered.
pub fn generate_with(
    profile: &Profile,
    seed: u64,
    sink: &mut dyn FnMut(&str, &str) -> io::Result<()>,
) -> io::Result<GenReport> {
    let l = Layout::new(profile);
    let mut report = GenReport {
        name: profile.name.clone(),
        seed,
        files: profile.files,
        loc: 0,
        bytes: 0,
        functions: 0,
        statements: 0,
        tree_hash: FNV_OFFSET,
    };

    let header = render_header(profile, seed, &l);
    absorb(&mut report, HEADER_NAME, &header);
    sink(HEADER_NAME, &header)?;

    let inits = plan_fptr_inits(profile, seed, &l);
    let mut spokes: HashMap<(usize, usize), u32> = HashMap::new();
    for (f, init) in inits.iter().enumerate() {
        let mut g = FileGen::new(profile, &l, f, seed, &mut spokes);
        g.render(init);
        report.functions += g.funcs;
        report.statements += g.stmts + g.calls;
        let name = file_name(profile, f);
        absorb(&mut report, &name, &g.buf);
        sink(&name, &g.buf)?;
    }
    Ok(report)
}

fn absorb(report: &mut GenReport, name: &str, text: &str) {
    report.loc += text.lines().filter(|l| !l.trim().is_empty()).count();
    report.bytes += text.len() as u64;
    let mut h = report.tree_hash;
    for chunk in [name.as_bytes(), &[0u8], text.as_bytes()] {
        for &b in chunk {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    report.tree_hash = h;
}

/// Pool sizes and other whole-tree constants derived from a profile.
struct Layout {
    per_file: Vec<usize>,
    n_ints: usize,
    n_ptrs: usize,
    n_pptrs: usize,
    n_gints: usize,
    n_gptrs: usize,
    n_gpptrs: usize,
    n_fptrs: usize,
    inst_per_type: usize,
    n_gstructs: usize,
    ptr_fields: usize,
    int_fields: usize,
    funcs_per_layer: usize,
}

impl Layout {
    fn new(p: &Profile) -> Layout {
        let budget = p.total_loc / p.files;
        let round4 = |n: usize| (n - n % WINDOW).max(WINDOW);
        let n_ptrs = round4((budget / 30).clamp(12, 384));
        let n_gptrs = round4((p.files * 2).clamp(16, 512));
        let ptr_fields = ((4.0 * p.struct_field_ptr_mix).round() as usize).min(4);
        let inst_per_type = if p.files >= 16 { 2 } else { 1 };
        // ~18 lines per function (12 mix statements + statics, signature,
        // keep, return, brace); used only to slice the call DAG into layers.
        let est_funcs = (budget / 18).max(p.call_depth);
        let mut per_file = vec![budget; p.files];
        for slot in per_file.iter_mut().take(p.total_loc % p.files) {
            *slot += 1;
        }
        Layout {
            per_file,
            n_ints: (budget / 40).clamp(8, 256),
            n_ptrs,
            n_pptrs: n_ptrs / WINDOW,
            n_gints: p.files.clamp(16, 384),
            n_gptrs,
            n_gpptrs: n_gptrs / WINDOW,
            n_fptrs: (p.files / 2).clamp(2, 192),
            inst_per_type,
            n_gstructs: p.struct_types * inst_per_type,
            ptr_fields,
            int_fields: 4 - ptr_fields,
            funcs_per_layer: (est_funcs / p.call_depth).max(1),
        }
    }
}

fn render_header(p: &Profile, seed: u64, l: &Layout) -> String {
    let mut h = String::new();
    let mut line = |s: String| {
        h.push_str(&s);
        h.push('\n');
    };
    line(format!(
        "/* {HEADER_NAME} — generated by cla-genc: {} (seed {seed}) */",
        p.name
    ));
    line("#ifndef GENC_H".to_owned());
    line("#define GENC_H".to_owned());
    for t in 0..p.struct_types {
        line(format!("struct GT{t} {{"));
        line(format!("    struct GT{t} *next;"));
        for j in 0..l.ptr_fields {
            line(format!("    int *fp{j};"));
        }
        for j in 0..l.int_fields {
            line(format!("    int fi{j};"));
        }
        line("};".to_owned());
    }
    for k in 0..l.n_gints {
        line(format!("extern int gi{k};"));
    }
    for k in 0..l.n_gptrs {
        line(format!("extern int *gp{k};"));
    }
    for k in 0..l.n_gpptrs {
        line(format!("extern int **gq{k};"));
    }
    for k in 0..l.n_gstructs {
        line(format!("extern struct GT{} gs{k};", k % p.struct_types));
    }
    for t in 0..p.struct_types {
        line(format!("extern struct GT{t} *gsp{t};"));
    }
    for k in 0..l.n_fptrs {
        line(format!("extern int *(*fp{k})(int *);"));
    }
    for f in 0..p.files {
        for j in 0..EXPORTS {
            line(format!("int *x{f}_{j}(int *a);"));
        }
    }
    line("#endif".to_owned());
    h
}

/// Chooses the two exported targets every function-pointer global is
/// assigned, keyed off the tree seed so owner files stay independent.
fn plan_fptr_inits(p: &Profile, seed: u64, l: &Layout) -> Vec<Vec<String>> {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xf17a_55e7);
    let mut per_file = vec![Vec::new(); p.files];
    for k in 0..l.n_fptrs {
        let owner = k % p.files;
        for _ in 0..2 {
            let g = rng.random_range(0..p.files);
            let j = rng.random_range(0..EXPORTS);
            per_file[owner].push(format!("fp{k} = x{g}_{j};"));
        }
    }
    per_file
}

struct FileGen<'a> {
    p: &'a Profile,
    l: &'a Layout,
    f: usize,
    rng: SplitMix64,
    buf: String,
    lines: usize,
    // Thermostat counters, fed by the shared line classifier.
    stmts: usize,
    ptr_stmts: usize,
    calls: usize,
    indirect: usize,
    direct: usize,
    cross: usize,
    funcs: usize,
    mix_fns: Vec<String>,
    spokes: &'a mut HashMap<(usize, usize), u32>,
}

impl<'a> FileGen<'a> {
    fn new(
        p: &'a Profile,
        l: &'a Layout,
        f: usize,
        seed: u64,
        spokes: &'a mut HashMap<(usize, usize), u32>,
    ) -> FileGen<'a> {
        FileGen {
            p,
            l,
            f,
            rng: SplitMix64::seed_from_u64(
                seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(f as u64 + 1),
            ),
            buf: String::with_capacity(l.per_file[f] * 24),
            lines: 0,
            stmts: 0,
            ptr_stmts: 0,
            calls: 0,
            indirect: 0,
            direct: 0,
            cross: 0,
            funcs: 0,
            mix_fns: Vec::new(),
            spokes,
        }
    }

    fn line(&mut self, s: &str) {
        self.buf.push_str(s);
        self.buf.push('\n');
        self.lines += 1;
    }

    fn blank(&mut self) {
        self.buf.push('\n');
    }

    /// Emits one indented body line and feeds the thermostats with the same
    /// classification the conformance measurer will derive from the text.
    fn stmt(&mut self, s: &str) {
        self.buf.push_str("    ");
        self.buf.push_str(s);
        self.buf.push('\n');
        self.lines += 1;
        match classify_line(s) {
            Some(StmtClass::DirectCall) => {
                self.calls += 1;
                self.direct += 1;
            }
            Some(StmtClass::IndirectCall) => {
                self.calls += 1;
                self.indirect += 1;
            }
            Some(StmtClass::Pointer) => {
                self.stmts += 1;
                self.ptr_stmts += 1;
            }
            Some(StmtClass::Int) => self.stmts += 1,
            None => {}
        }
    }

    fn chance(&mut self, p: f64) -> bool {
        (self.rng.random_range(0..1_000_000usize) as f64) < p * 1_000_000.0
    }

    fn render(&mut self, fptr_inits: &[String]) {
        self.line(&format!(
            "/* generated by cla-genc: {} file {} of {} */",
            self.p.name, self.f, self.p.files
        ));
        self.line(&format!("#include \"{HEADER_NAME}\""));
        self.blank();
        self.declare_owned_globals();
        self.declare_locals();
        if !fptr_inits.is_empty() {
            self.blank();
            self.line(&format!("void ifn{}(void) {{", self.f));
            for init in fptr_inits {
                self.stmt(init);
            }
            self.line("}");
            self.funcs += 1;
        }
        let budget = self.l.per_file[self.f];
        while self.lines < budget || self.mix_fns.len() <= EXPORTS {
            self.emit_function();
        }
    }

    /// Definitions for the header globals this file owns (round-robin by
    /// index, so every extern is defined exactly once across the tree).
    fn declare_owned_globals(&mut self) {
        let (f, n) = (self.f, self.p.files);
        let owned = |count: usize| (f..count).step_by(n);
        for k in owned(self.l.n_gints) {
            self.line(&format!("int gi{k};"));
        }
        for k in owned(self.l.n_gptrs) {
            self.line(&format!("int *gp{k};"));
        }
        for k in owned(self.l.n_gpptrs) {
            self.line(&format!("int **gq{k};"));
        }
        for k in owned(self.l.n_gstructs) {
            self.line(&format!("struct GT{} gs{k};", k % self.p.struct_types));
        }
        for t in owned(self.p.struct_types) {
            self.line(&format!("struct GT{t} *gsp{t};"));
        }
        for k in owned(self.l.n_fptrs) {
            self.line(&format!("int *(*fp{k})(int *);"));
        }
    }

    fn declare_locals(&mut self) {
        let f = self.f;
        for k in 0..self.l.n_ints {
            let st = if k % 7 == 0 { "static " } else { "" };
            self.line(&format!("{st}int i{f}_{k};"));
        }
        for k in 0..self.l.n_ptrs {
            let st = if k % 7 == 0 { "static " } else { "" };
            self.line(&format!("{st}int *p{f}_{k};"));
        }
        for k in 0..self.l.n_pptrs {
            self.line(&format!("int **q{f}_{k};"));
        }
    }

    // ---- operand pickers -------------------------------------------------

    fn global_scope(&mut self) -> bool {
        self.chance(self.p.global_traffic)
    }

    fn pick_int(&mut self) -> String {
        if self.global_scope() {
            format!("gi{}", self.rng.random_range(0..self.l.n_gints))
        } else {
            format!("i{}_{}", self.f, self.rng.random_range(0..self.l.n_ints))
        }
    }

    /// Two distinct pointers from one copy cluster of the chosen scope,
    /// returned `(higher index, lower index)`.
    fn ptr_pair(&mut self) -> (String, String) {
        let global = self.global_scope();
        let pool = if global {
            self.l.n_gptrs
        } else {
            self.l.n_ptrs
        };
        let clusters = (pool / CLUSTER).max(1);
        let c = self.rng.random_range(0..clusters) * CLUSTER;
        let width = CLUSTER.min(pool - c);
        let a = self.rng.random_range(0..width);
        let mut b = self.rng.random_range(0..width);
        if a == b {
            b = (b + 1) % width;
        }
        let (hi, lo) = (c + a.max(b), c + a.min(b));
        let name = |k: usize| {
            if global {
                format!("gp{k}")
            } else {
                format!("p{}_{k}", self.f)
            }
        };
        (name(hi), name(lo))
    }

    fn pick_ptr(&mut self) -> String {
        self.ptr_pair().0
    }

    /// A `**` pointer plus a `*` pointer from its association window.
    /// `offsets` picks which window slots are eligible — stores and loads
    /// use overlapping but not identical slots, which creates store→load
    /// flow without turning every window into a relay.
    fn pptr_pair(&mut self, offsets: std::ops::Range<usize>) -> (String, String) {
        let global = self.global_scope();
        let pool = if global {
            self.l.n_gpptrs
        } else {
            self.l.n_pptrs
        };
        let k = self.rng.random_range(0..pool);
        let slot = k * WINDOW + self.rng.random_range(offsets);
        if global {
            (format!("gq{k}"), format!("gp{slot}"))
        } else {
            (format!("q{}_{k}", self.f), format!("p{}_{slot}", self.f))
        }
    }

    // ---- statement emitters ----------------------------------------------

    fn emit_function(&mut self) {
        let idx = self.mix_fns.len();
        let layer = (idx / self.l.funcs_per_layer).min(self.p.call_depth - 1);
        let name = if idx < EXPORTS {
            format!("x{}_{idx}", self.f)
        } else {
            format!("l{}_{idx}", self.f)
        };
        self.blank();
        self.line(&format!("static int {name}_own;"));
        self.line(&format!("static int *{name}_keep;"));
        self.line(&format!("int *{name}(int *a) {{"));

        let slots = self.rng.random_range(8..17usize);
        // Fanout thermostat: bring total calls up to fanout × functions.
        let want = self.p.call_fanout * (self.funcs + 1) as f64 - self.calls as f64;
        let mut calls_left = (want.round().max(0.0) as usize).min(slots);
        for s in 0..slots {
            // Spread the calls evenly through the body.
            if calls_left > 0 && self.rng.random_range(0..slots - s) < calls_left {
                calls_left -= 1;
                self.emit_call(layer);
            } else if (self.ptr_stmts as f64) < self.p.pointer_density * (self.stmts + 1) as f64 {
                self.emit_ptr_stmt();
            } else {
                self.emit_int_stmt();
            }
        }
        self.stmt(&format!("{name}_keep = a;"));
        self.stmt(&format!("return &{name}_own;"));
        self.line("}");
        self.funcs += 1;
        self.mix_fns.push(name);
    }

    fn emit_call(&mut self, layer: usize) {
        let (dst, arg) = self.ptr_pair();
        let go_indirect =
            (self.indirect as f64) < self.p.indirect_call_rate * (self.calls + 1) as f64;
        if go_indirect {
            let k = self.rng.random_range(0..self.l.n_fptrs);
            self.stmt(&format!("{dst} = fp{k}({arg});"));
            return;
        }
        let go_cross = (self.cross as f64) < self.p.cross_file_fraction * (self.direct + 1) as f64;
        let callee = if go_cross {
            None
        } else {
            self.in_file_callee(layer)
        };
        let callee = match callee {
            Some(c) => c,
            None => {
                self.cross += 1;
                self.export_of_other_file()
            }
        };
        self.stmt(&format!("{dst} = {callee}({arg});"));
    }

    /// A previously defined function from a lower layer of this file's DAG
    /// (usually the layer just below, sometimes any lower layer for longer
    /// chains). `None` for leaves — their calls go cross-file.
    fn in_file_callee(&mut self, layer: usize) -> Option<String> {
        if layer == 0 || self.mix_fns.is_empty() {
            return None;
        }
        let lo_layer = if self.chance(0.2) { 0 } else { layer - 1 };
        let lo = (lo_layer * self.l.funcs_per_layer).min(self.mix_fns.len() - 1);
        let hi = (layer * self.l.funcs_per_layer).min(self.mix_fns.len());
        if lo >= hi {
            return None;
        }
        Some(self.mix_fns[self.rng.random_range(lo..hi)].clone())
    }

    fn export_of_other_file(&mut self) -> String {
        let mut g = self.rng.random_range(0..self.p.files);
        if g == self.f && self.p.files > 1 {
            g = (g + 1) % self.p.files;
        }
        format!("x{g}_{}", self.rng.random_range(0..EXPORTS))
    }

    fn emit_int_stmt(&mut self) {
        let roll = self.rng.random_range(0..100usize);
        let x = self.pick_int();
        let y = self.pick_int();
        let s = if roll < 40 {
            format!("{x} = {y};")
        } else if roll < 65 {
            let z = self.pick_int();
            format!("{x} = {y} + {z};")
        } else if roll < 80 {
            format!("{x} = {x} + 1;")
        } else {
            let z = self.pick_int();
            format!("if ({x}) {{ {y} = {z}; }}")
        };
        self.stmt(&s);
    }

    fn emit_ptr_stmt(&mut self) {
        let roll = self.rng.random_range(0..100usize);
        if roll < 30 {
            let p = self.pick_ptr();
            let x = self.pick_int();
            self.stmt(&format!("{p} = &{x};"));
        } else if roll < 52 {
            let (mut dst, mut src) = self.ptr_pair();
            // Mostly one direction per cluster keeps chains acyclic; a few
            // reversals create realistic cycles.
            if self.rng.random_range(0..8usize) == 0 {
                std::mem::swap(&mut dst, &mut src);
            }
            self.stmt(&format!("{dst} = {src};"));
        } else if roll < 66 {
            let (q, p) = self.pptr_pair(0..3);
            self.stmt(&format!("*{q} = {p};"));
        } else if roll < 80 {
            let (q, p) = self.pptr_pair(2..WINDOW);
            self.stmt(&format!("{p} = *{q};"));
        } else if roll < 90 {
            let (q, p) = self.pptr_pair(0..WINDOW);
            self.stmt(&format!("{q} = &{p};"));
        } else {
            self.emit_struct_stmt();
        }
    }

    fn emit_struct_stmt(&mut self) {
        let t = self.rng.random_range(0..self.p.struct_types);
        let inst = t + self.p.struct_types * self.rng.random_range(0..self.l.inst_per_type);
        let roll = self.rng.random_range(0..100usize);
        if self.l.ptr_fields > 0 && roll >= 40 {
            let j = self.rng.random_range(0..self.l.ptr_fields);
            let used = self.spokes.entry((t, j)).or_insert(0);
            if *used < SPOKE_CAP {
                *used += 1;
                let p = self.pick_ptr();
                let s = match roll % 3 {
                    0 => format!("gs{inst}.fp{j} = {p};"),
                    1 => format!("{p} = gs{inst}.fp{j};"),
                    _ => format!("gsp{t}->fp{j} = {p};"),
                };
                self.stmt(&s);
                return;
            }
        }
        if roll.is_multiple_of(2) {
            self.stmt(&format!("gsp{t} = &gs{inst};"));
        } else {
            self.stmt(&format!("gsp{t} = gsp{t}->next;"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Profile {
        Profile {
            name: "tiny".to_owned(),
            total_loc: 2_000,
            files: 3,
            ..Profile::default()
        }
    }

    #[test]
    fn deterministic_per_seed_and_streamed_in_order() {
        let p = tiny();
        let mut names_a = Vec::new();
        let run = |names: Option<&mut Vec<String>>| {
            let mut tree = Vec::new();
            let mut names = names;
            let r = generate_with(&p, 7, &mut |n, t| {
                if let Some(names) = names.as_deref_mut() {
                    names.push(n.to_owned());
                }
                tree.push((n.to_owned(), t.to_owned()));
                Ok(())
            })
            .unwrap();
            (r, tree)
        };
        let (ra, ta) = run(Some(&mut names_a));
        let (rb, tb) = run(None);
        assert_eq!(ra, rb);
        assert_eq!(ta, tb);
        assert_eq!(names_a[0], HEADER_NAME);
        assert_eq!(names_a[1], "tiny_0000.c");
        let (rc, tc) = {
            let mut tree = Vec::new();
            let r = generate_with(&p, 8, &mut |n, t| {
                tree.push((n.to_owned(), t.to_owned()));
                Ok(())
            })
            .unwrap();
            (r, tree)
        };
        assert_ne!(ra.tree_hash, rc.tree_hash);
        assert_ne!(ta, tc);
    }

    #[test]
    fn report_counts_match_the_measurer() {
        let p = tiny();
        let mut m = crate::measure::Measure::default();
        let r = generate_with(&p, 1, &mut |_, t| {
            m.add_source(t);
            Ok(())
        })
        .unwrap();
        assert_eq!(r.loc, m.loc);
        assert_eq!(r.functions, m.functions);
        assert_eq!(r.statements, m.statements);
        assert_eq!(r.files + 1, m.files);
    }

    #[test]
    fn loc_lands_near_the_declared_total() {
        let p = tiny();
        let r = generate_with(&p, 3, &mut |_, _| Ok(())).unwrap();
        // Header and final-function overshoot are the only slack.
        assert!(
            r.loc >= p.total_loc && r.loc <= p.total_loc + p.total_loc / 2,
            "loc {} for target {}",
            r.loc,
            p.total_loc
        );
    }
}
