//! Declarative codebase profiles.
//!
//! A profile is a flat TOML-like file of `key = value` lines describing the
//! *shape* of a generated codebase: how big it is, how it is split into
//! files, what the call graph looks like, and how pointer-heavy the code is.
//! The parser is deliberately tiny (the workspace is zero-dependency): it
//! accepts comments, blank lines, quoted strings, integers with `_`
//! separators, and floats — nothing else. Unknown keys are errors so that a
//! typo in a profile fails loudly instead of silently falling back to a
//! default.

use std::fmt;
use std::path::Path;

/// The shape of a generated codebase. See `profiles/*.toml` for the
/// ship-with-the-repo instances.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Codebase name; becomes the source-file prefix (`{name}_0001.c`).
    pub name: String,
    /// Default RNG seed (the CLI `--seed` flag overrides it).
    pub seed: u64,
    /// Target total physical lines across all generated `.c` files.
    pub total_loc: usize,
    /// Number of `.c` files the lines are spread over.
    pub files: usize,
    /// Average direct calls emitted per function body.
    pub call_fanout: f64,
    /// Layers in each file's call DAG; callers sit above their callees.
    pub call_depth: usize,
    /// Fraction of calls that target another file's exported functions.
    pub cross_file_fraction: f64,
    /// Fraction of calls routed through function-pointer globals.
    pub indirect_call_rate: f64,
    /// Fraction of non-call body statements that move pointers.
    pub pointer_density: f64,
    /// Distinct struct types declared in the shared header.
    pub struct_types: usize,
    /// Fraction of each struct's fields that are pointers.
    pub struct_field_ptr_mix: f64,
    /// Fraction of statement operands drawn from shared globals.
    pub global_traffic: f64,
}

impl Default for Profile {
    fn default() -> Self {
        Profile {
            name: "genc".to_owned(),
            seed: 1,
            total_loc: 10_000,
            files: 8,
            call_fanout: 2.0,
            call_depth: 6,
            cross_file_fraction: 0.15,
            indirect_call_rate: 0.03,
            pointer_density: 0.35,
            struct_types: 12,
            struct_field_ptr_mix: 0.5,
            global_traffic: 0.08,
        }
    }
}

/// A profile that failed to parse or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileError {
    /// 1-based line the problem was found on; 0 for whole-file problems.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "profile: {}", self.message)
        } else {
            write!(f, "profile line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ProfileError {}

fn err(line: usize, message: impl Into<String>) -> ProfileError {
    ProfileError {
        line,
        message: message.into(),
    }
}

impl Profile {
    /// Parses a profile from TOML-like text. Required keys: `total_loc`,
    /// `files`. Everything else falls back to [`Profile::default`].
    pub fn parse(text: &str) -> Result<Profile, ProfileError> {
        let mut p = Profile::default();
        let mut saw_total = false;
        let mut saw_files = false;
        for (ix, raw) in text.lines().enumerate() {
            let lineno = ix + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(lineno, format!("expected `key = value`, got {line:?}")));
            };
            let key = key.trim();
            let value = strip_comment(value).trim();
            if value.is_empty() {
                return Err(err(lineno, format!("missing value for `{key}`")));
            }
            match key {
                "name" => p.name = parse_string(value, lineno)?,
                "seed" => p.seed = parse_int(value, lineno)?,
                "total_loc" => {
                    p.total_loc = parse_int(value, lineno)? as usize;
                    saw_total = true;
                }
                "files" => {
                    p.files = parse_int(value, lineno)? as usize;
                    saw_files = true;
                }
                "call_fanout" => p.call_fanout = parse_float(value, lineno)?,
                "call_depth" => p.call_depth = parse_int(value, lineno)? as usize,
                "cross_file_fraction" => p.cross_file_fraction = parse_float(value, lineno)?,
                "indirect_call_rate" => p.indirect_call_rate = parse_float(value, lineno)?,
                "pointer_density" => p.pointer_density = parse_float(value, lineno)?,
                "struct_types" => p.struct_types = parse_int(value, lineno)? as usize,
                "struct_field_ptr_mix" => p.struct_field_ptr_mix = parse_float(value, lineno)?,
                "global_traffic" => p.global_traffic = parse_float(value, lineno)?,
                _ => return Err(err(lineno, format!("unknown key `{key}`"))),
            }
        }
        if !saw_total {
            return Err(err(0, "missing required key `total_loc`"));
        }
        if !saw_files {
            return Err(err(0, "missing required key `files`"));
        }
        p.validate()?;
        Ok(p)
    }

    /// Reads and parses a profile file.
    pub fn load(path: &Path) -> Result<Profile, ProfileError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
        let mut p = Profile::parse(&text)?;
        // An unnamed profile takes its name from the file stem.
        if !text.contains("name") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                p.name = stem.to_owned();
            }
        }
        Ok(p)
    }

    /// Checks internal consistency; called by [`Profile::parse`].
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err(err(0, "name must be a non-empty [A-Za-z0-9_]+ identifier"));
        }
        if self.files == 0 {
            return Err(err(0, "files must be at least 1"));
        }
        if self.total_loc / self.files < 60 {
            return Err(err(
                0,
                format!(
                    "per-file budget {} is too small (need at least 60 lines per file)",
                    self.total_loc / self.files
                ),
            ));
        }
        if self.call_depth == 0 {
            return Err(err(0, "call_depth must be at least 1"));
        }
        if self.struct_types == 0 {
            return Err(err(0, "struct_types must be at least 1"));
        }
        if self.call_fanout < 0.0 || self.call_fanout > 16.0 {
            return Err(err(0, "call_fanout must be in [0, 16]"));
        }
        for (v, name) in [
            (self.cross_file_fraction, "cross_file_fraction"),
            (self.indirect_call_rate, "indirect_call_rate"),
            (self.pointer_density, "pointer_density"),
            (self.struct_field_ptr_mix, "struct_field_ptr_mix"),
            (self.global_traffic, "global_traffic"),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(err(0, format!("{name} must be in [0, 1]")));
            }
        }
        Ok(())
    }
}

fn strip_comment(value: &str) -> &str {
    // `#` never appears inside the values we accept (names are identifiers),
    // so everything after one is a trailing comment.
    match value.find('#') {
        Some(ix) => &value[..ix],
        None => value,
    }
}

fn parse_string(value: &str, line: usize) -> Result<String, ProfileError> {
    let v = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| err(line, format!("expected a quoted string, got {value}")))?;
    Ok(v.to_owned())
}

fn parse_int(value: &str, line: usize) -> Result<u64, ProfileError> {
    value
        .replace('_', "")
        .parse()
        .map_err(|_| err(line, format!("expected an integer, got {value}")))
}

fn parse_float(value: &str, line: usize) -> Result<f64, ProfileError> {
    value
        .replace('_', "")
        .parse()
        .map_err(|_| err(line, format!("expected a number, got {value}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_profile() {
        let p = Profile::parse(
            r#"
            # shape of a small codebase
            name = "tiny"
            seed = 9
            total_loc = 12_000   # across all files
            files = 8
            call_fanout = 2.5
            call_depth = 4
            cross_file_fraction = 0.2
            indirect_call_rate = 0.04
            pointer_density = 0.4
            struct_types = 6
            struct_field_ptr_mix = 0.5
            global_traffic = 0.1
            "#,
        )
        .unwrap();
        assert_eq!(p.name, "tiny");
        assert_eq!(p.total_loc, 12_000);
        assert_eq!(p.files, 8);
        assert!((p.call_fanout - 2.5).abs() < 1e-9);
    }

    #[test]
    fn defaults_fill_missing_keys() {
        let p = Profile::parse("total_loc = 6000\nfiles = 4\n").unwrap();
        assert_eq!(p.seed, Profile::default().seed);
        assert!((p.pointer_density - Profile::default().pointer_density).abs() < 1e-9);
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        assert!(Profile::parse("total_loc = 6000\nfiles = 4\nfanout = 2\n").is_err());
        assert!(Profile::parse("total_loc = 6000\n").is_err());
        assert!(Profile::parse("total_loc = 6000\nfiles = 4\npointer_density = 1.5\n").is_err());
        assert!(Profile::parse("total_loc = 100\nfiles = 4\n").is_err());
        let e = Profile::parse("total_loc = what\nfiles = 4\n").unwrap_err();
        assert_eq!(e.line, 1);
    }
}
