//! # cla-bench — evaluation harness
//!
//! One bench target per table and figure of the paper (run with
//! `cargo bench -p cla-bench`, or a single one with e.g.
//! `cargo bench -p cla-bench --bench table3_results`):
//!
//! | target | reproduces |
//! |---|---|
//! | `table1_strength` | Table 1 (operation classification) |
//! | `table2_benchmarks` | Table 2 (benchmark characteristics) |
//! | `table3_results` | Table 3 (main points-to results) |
//! | `table4_field_model` | Table 4 (field-based vs field-independent) |
//! | `table_fig1_chains` | Figure 1 (dependence chains) |
//! | `table_fig3_example` | Figure 3 (example derivation) |
//! | `table_ablation` | §5's caching/cycle-elimination ablation |
//! | `table_solvers` | §6's comparison with worklist Andersen and Steensgaard |
//! | `micro` | micro-benchmarks of the frontend, database, and solver kernels |
//!
//! The synthetic benchmarks are scaled by the `CLA_SCALE` environment
//! variable (default 0.1 = 10% of the paper's sizes; use `CLA_SCALE=1.0`
//! for full size).

use cla_cfront::MemoryFs;
use cla_workload::{generate, BenchSpec, GenOptions, Workload};

/// The benchmark scale factor from `CLA_SCALE` (default 0.1).
pub fn scale() -> f64 {
    std::env::var("CLA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1)
}

/// Generates a workload at the harness scale and loads it into an in-memory
/// file system.
pub fn materialize(spec: &BenchSpec) -> (MemoryFs, Workload) {
    let w = generate(
        spec,
        &GenOptions {
            scale: scale(),
            ..Default::default()
        },
    );
    let mut fs = MemoryFs::new();
    for (p, c) in &w.files {
        fs.add(p.clone(), c.clone());
    }
    (fs, w)
}

/// Formats a count with thousands separators.
pub fn fmt_count(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a byte count as MB with one decimal.
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.1}MB", bytes as f64 / 1e6)
}

/// Prints a standard header naming the experiment and scale.
pub fn header(title: &str) {
    println!("================================================================");
    println!("{title}");
    println!(
        "scale = {} (set CLA_SCALE to change; 1.0 = paper size)",
        scale()
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(1_234_567), "1,234,567");
        assert_eq!(fmt_mb(12_100_000), "12.1MB");
    }

    #[test]
    fn materialize_small() {
        use cla_cfront::FileProvider as _;
        std::env::set_var("CLA_SCALE", "0.01");
        let spec = cla_workload::by_name("nethack").unwrap();
        let (fs, w) = materialize(spec);
        assert!(!w.source_files().is_empty());
        assert!(fs.read("shared.h").is_some());
    }
}
