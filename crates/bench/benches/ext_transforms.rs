//! Extensions bench: the database-to-database transformers the paper's §4
//! describes as the architecture's pay-off — offline variable substitution
//! (a pre-analysis optimizer) and context duplication (the paper's
//! context-sensitivity experiment) — measured on the synthetic suite.

use cla_bench::{fmt_count, header, materialize};
use cla_cladb::transform::{duplicate_contexts, substitute_variables};
use cla_core::pipeline::PipelineOptions;
use cla_core::{solve_unit, SolveOptions};
use cla_ir::compile_file;
use cla_workload::PAPER_BENCHMARKS;
use std::time::Instant;

fn main() {
    header("§4 extensions: database-to-database transformers");
    println!(
        "{:<8} {:>10} {:>10} {:>9} {:>10} {:>10} {:>9} {:>10}",
        "bench", "assigns", "ovs-less", "merged", "base time", "ovs time", "ctx fns", "ctx +asgn"
    );
    for spec in &PAPER_BENCHMARKS {
        let (fs, w) = materialize(spec);
        let opts = PipelineOptions::default();
        let mut units = Vec::new();
        for f in w.source_files() {
            units.push(
                compile_file(&fs, f, &opts.pp, &opts.lower)
                    .expect("compile")
                    .0,
            );
        }
        let (program, _) = cla_cladb::link(&units, spec.name);

        let t = Instant::now();
        let (base_pts, _) = solve_unit(&program, SolveOptions::default());
        let base_time = t.elapsed();

        // Offline variable substitution shrinks the constraint system and
        // must preserve the solution (checked through the map on a sample).
        let (reduced, map, ovs) = substitute_variables(&program);
        let t = Instant::now();
        let (red_pts, _) = solve_unit(&reduced, SolveOptions::default());
        let ovs_time = t.elapsed();
        for i in (0..program.objects.len()).step_by(97) {
            let o = cla_ir::ObjId(i as u32);
            assert_eq!(
                base_pts.points_to(o),
                red_pts.points_to(map[i]),
                "{}: OVS changed pts({})",
                spec.name,
                program.object(o).name
            );
        }

        // Context duplication grows the database for precision.
        let (_dup, ctx) = duplicate_contexts(&program, 2);

        println!(
            "{:<8} {:>10} {:>10} {:>9} {:>9.3}s {:>9.3}s {:>9} {:>10}",
            spec.name,
            fmt_count(program.assigns.len() as u64),
            fmt_count(reduced.assigns.len() as u64),
            fmt_count(ovs.merged as u64),
            base_time.as_secs_f64(),
            ovs_time.as_secs_f64(),
            fmt_count(ctx.functions_cloned as u64),
            fmt_count(ctx.assigns_added as u64),
        );
    }
    println!("\n(OVS results are verified equal to the baseline through the");
    println!(" substitution map; context duplication is exercised at k=2)");
}
