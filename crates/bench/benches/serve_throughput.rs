//! Multi-client throughput of the query server over its sealed snapshot.
//!
//! Two experiments:
//!
//! 1. **Socket aggregate throughput** — N client threads connect to a real
//!    Unix-socket server and hammer it with mixed points-to / alias /
//!    depend queries; reported as aggregate queries/second per client
//!    count. This exercises the full production path: framing, JSON,
//!    result cache, sealed snapshot.
//!
//! 2. **Serialized vs lock-free query core** — the same query workload run
//!    in-process against (a) the old design, a `Mutex<Warm>` every query
//!    must lock, and (b) the sealed snapshot read from `&self` with no
//!    lock at all. The speedup column at 8 threads is the headline number:
//!    the sealed path scales with cores while the mutex path is stuck at
//!    one, so it should exceed 4x on any machine with >= 4 cores.

use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use cla_cfront::{MemoryFs, PpOptions};
use cla_cladb::{link, write_object, Database};
use cla_core::{SealedGraph, SolveOptions, Warm};
use cla_ir::{compile_file, LowerOptions, ObjId};
use cla_serve::{serve, Session};
use cla_workload::{by_name, generate, GenOptions};

static SOCKET_SEQ: AtomicU32 = AtomicU32::new(0);

fn temp_socket() -> std::path::PathBuf {
    let n = SOCKET_SEQ.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("cla-serve-bench-{}-{n}.sock", std::process::id()))
}

/// The shared benchmark program (vortex profile at a small fixed scale, so
/// the bench measures the query path, not the solver).
fn sample_fs() -> (MemoryFs, Vec<String>) {
    let spec = by_name("vortex").unwrap();
    let w = generate(
        spec,
        &GenOptions {
            scale: 0.02,
            files: 4,
            ..Default::default()
        },
    );
    let mut fs = MemoryFs::new();
    for (p, c) in &w.files {
        fs.add(p.clone(), c.clone());
    }
    let files = w.source_files().iter().map(|f| f.to_string()).collect();
    (fs, files)
}

fn sample_session(fs: &MemoryFs, files: &[String]) -> Session {
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    Session::from_files(
        fs,
        &refs,
        &PpOptions::default(),
        &LowerOptions::default(),
        SolveOptions::default(),
    )
    .unwrap()
}

/// Queryable pointer variables: names the wire protocol resolves.
fn query_names(session: &Session) -> Vec<String> {
    let mut names: Vec<String> = session
        .pointer_variables()
        .into_iter()
        .filter(|n| session.points_to(n).is_ok())
        .collect();
    names.truncate(64);
    assert!(names.len() >= 8, "workload too small to benchmark");
    names
}

/// One client's slice of the mixed workload, as raw request lines.
fn request(names: &[String], i: usize) -> String {
    let name = &names[i % names.len()];
    match i % 16 {
        // Depend walks are the heavyweight query; keep them a steady
        // minority like an interactive tool would.
        0 => format!("{{\"cmd\":\"depend\",\"target\":\"{name}\"}}"),
        n if n % 3 == 1 => {
            let other = &names[(i / 3 + 7) % names.len()];
            format!("{{\"cmd\":\"alias\",\"a\":\"{name}\",\"b\":\"{other}\"}}")
        }
        _ => format!("{{\"cmd\":\"points-to\",\"var\":\"{name}\"}}"),
    }
}

/// Aggregate queries/second with `clients` socket clients.
fn socket_qps(session: &Arc<Session>, names: &[String], clients: usize, per_client: usize) -> f64 {
    let server = serve(Arc::clone(session), None, &temp_socket()).unwrap();
    let path = server.path().to_path_buf();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let path = &path;
            scope.spawn(move || {
                let stream = UnixStream::connect(path).unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                for i in 0..per_client {
                    let req = request(names, c * per_client + i);
                    writer.write_all(req.as_bytes()).unwrap();
                    writer.write_all(b"\n").unwrap();
                    line.clear();
                    reader.read_line(&mut line).unwrap();
                    assert!(
                        line.contains("\"ok\":true"),
                        "query failed: {req} -> {line}"
                    );
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    server.stop();
    (clients * per_client) as f64 / secs
}

/// The in-process core-path comparison: every thread sums points-to sets
/// for a fixed id schedule, either through a shared `Mutex<Warm>` (the old
/// one-at-a-time design) or straight off the sealed snapshot.
fn core_qps(run: &(dyn Fn(usize) -> u64 + Sync), threads: usize, per_thread: usize) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut acc = 0u64;
                for i in 0..per_thread {
                    acc ^= run(t * per_thread + i);
                }
                black_box(acc);
            });
        }
    });
    (threads * per_thread) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    cla_bench::header("serve throughput: N clients over one sealed snapshot");

    let (fs, files) = sample_fs();
    let session = Arc::new(sample_session(&fs, &files));
    let names = query_names(&session);
    println!(
        "program: {} files, {} queryable pointer variables\n",
        files.len(),
        names.len()
    );

    println!("socket aggregate throughput (mixed points-to/alias/depend):");
    let per_client = 4000;
    let mut base = 0.0;
    for clients in [1usize, 2, 4, 8] {
        let qps = socket_qps(&session, &names, clients, per_client);
        if clients == 1 {
            base = qps;
        }
        println!(
            "  {clients} client(s): {:>10} queries/s   ({:.2}x vs 1 client)",
            cla_bench::fmt_count(qps as u64),
            qps / base
        );
    }

    // The core-path comparison strips away sockets and JSON so the locking
    // discipline is the only variable.
    let units: Vec<_> = files
        .iter()
        .map(|f| {
            compile_file(&fs, f, &PpOptions::default(), &LowerOptions::default())
                .unwrap()
                .0
        })
        .collect();
    let (program, _) = link(&units, "bench");
    let db = Database::open(write_object(&program)).unwrap();
    let sealed: SealedGraph = Warm::from_database(&db, SolveOptions::default()).seal();
    let ids: Vec<ObjId> = (0..sealed.object_count() as u32)
        .map(ObjId)
        .filter(|&o| !sealed.points_to(o).is_empty())
        .collect();
    let warm = Mutex::new(Warm::from_database(&db, SolveOptions::default()));

    let serialized = |i: usize| -> u64 {
        let id = ids[i % ids.len()];
        warm.lock()
            .unwrap()
            .points_to(id)
            .iter()
            .map(|o| u64::from(o.0))
            .sum()
    };
    let lock_free = |i: usize| -> u64 {
        let id = ids[i % ids.len()];
        sealed.points_to(id).iter().map(|o| u64::from(o.0)).sum()
    };

    println!("\nquery core: Mutex<Warm> (old) vs sealed snapshot (new):");
    let per_thread = 400_000;
    for threads in [1usize, 2, 4, 8] {
        let old = core_qps(&serialized, threads, per_thread);
        let new = core_qps(&lock_free, threads, per_thread);
        println!(
            "  {threads} thread(s): mutex {:>11} q/s   sealed {:>12} q/s   speedup {:>6.2}x",
            cla_bench::fmt_count(old as u64),
            cla_bench::fmt_count(new as u64),
            new / old
        );
    }
}
