//! Measures what the observability layer costs: the end-to-end pipeline
//! with instrumentation disabled (the default — must stay within 2% of an
//! uninstrumented build), the same pipeline with a trace sink attached,
//! and the absolute cost of the individual primitives.
//!
//! Self-timed like `micro.rs`: median of repeated runs, no benchmarking
//! dependencies.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cla_cfront::MemoryFs;
use cla_core::pipeline::{analyze, PipelineOptions};
use cla_obs::{ChromeTraceWriter, LATENCY_BUCKETS_US};
use cla_workload::{by_name, generate, GenOptions};

/// Runs `f` repeatedly and returns the median per-iteration time.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Duration {
    for _ in 0..2 {
        black_box(f());
    }
    let mut samples = Vec::new();
    let budget = Instant::now();
    while samples.len() < 20 && budget.elapsed() < Duration::from_secs(2) {
        let t = Instant::now();
        black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    println!("{name:32} {median:>12.2?}   ({} samples)", samples.len());
    median
}

fn main() {
    let spec = by_name("vortex").unwrap();
    let w = generate(
        spec,
        &GenOptions {
            scale: 0.05,
            files: 4,
            ..Default::default()
        },
    );
    let mut fs = MemoryFs::new();
    for (p, c) in &w.files {
        fs.add(p.clone(), c.clone());
    }
    let files: Vec<&str> = w.source_files();
    let opts = PipelineOptions::default();
    let run = |fs: &MemoryFs| analyze(fs, &files, &opts).expect("pipeline");

    println!("== obs overhead (vortex @ 5%, {} files) ==", files.len());
    let obs = cla_obs::global();

    // The default state: spans measure time but emit nothing, counters are
    // plain relaxed atomics. This is the figure the <2% budget applies to.
    assert!(!obs.tracing(), "bench must start with tracing disabled");
    let disabled = bench("pipeline, obs disabled", || run(&fs));

    // Full tracing into a discarded stream: every span serialized to JSON.
    let sink = ChromeTraceWriter::from_writer(Box::new(std::io::sink())).expect("sink");
    obs.set_trace_sink(Some(Arc::new(sink)));
    let traced = bench("pipeline, chrome trace on", || run(&fs));
    obs.set_trace_sink(None);

    let overhead = (traced.as_secs_f64() - disabled.as_secs_f64()) / disabled.as_secs_f64() * 100.0;
    println!("tracing overhead when enabled: {overhead:+.1}%");

    // Primitive costs, amortized over 1000 operations per sample.
    bench("1000 disabled spans", || {
        for _ in 0..1000 {
            let mut sp = obs.span("bench", "noop");
            sp.set("k", 1u64);
            drop(sp);
        }
    });
    let counter = obs.counter("bench_ops_total");
    bench("1000 counter incs", || {
        for _ in 0..1000 {
            counter.inc();
        }
    });
    let hist = obs.histogram_with("bench_lat_us", &[], LATENCY_BUCKETS_US);
    bench("1000 histogram observes", || {
        for i in 0..1000u64 {
            hist.observe(i);
        }
    });
}
