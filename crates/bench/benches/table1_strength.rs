//! Table 1: classification of operations (strong / weak / none per operand).
//!
//! This is a specification table; the "benchmark" prints the classification
//! as implemented and verifies it matches the paper row by row.

use cla_cfront::ast::{BinaryOp, UnaryOp};
use cla_ir::strength::{classify_binary, classify_unary, OpClass};

fn cls(c: OpClass) -> &'static str {
    match c {
        OpClass::Strong => "Strong",
        OpClass::Weak => "Weak",
        OpClass::None => "None",
    }
}

fn main() {
    cla_bench::header("Table 1: Classification of operations");
    println!(
        "{:<16} {:>10} {:>10}   paper",
        "Operations", "Argument 1", "Argument 2"
    );

    let rows: &[(&str, &[BinaryOp], (OpClass, OpClass))] = &[
        (
            "+, -, |, &, ^",
            &[
                BinaryOp::Add,
                BinaryOp::Sub,
                BinaryOp::BitOr,
                BinaryOp::BitAnd,
                BinaryOp::BitXor,
            ],
            (OpClass::Strong, OpClass::Strong),
        ),
        ("*", &[BinaryOp::Mul], (OpClass::Weak, OpClass::Weak)),
        (
            "%, >>, <<",
            &[BinaryOp::Rem, BinaryOp::Shr, BinaryOp::Shl],
            (OpClass::Weak, OpClass::None),
        ),
        (
            "&&, ||",
            &[BinaryOp::LogAnd, BinaryOp::LogOr],
            (OpClass::None, OpClass::None),
        ),
    ];
    let mut all_ok = true;
    for (label, ops, expected) in rows {
        for op in *ops {
            let got = classify_binary(*op);
            if got != *expected {
                all_ok = false;
            }
        }
        let got = classify_binary(ops[0]);
        println!(
            "{:<16} {:>10} {:>10}   ({}/{})",
            label,
            cls(got.0),
            cls(got.1),
            cls(expected.0),
            cls(expected.1)
        );
    }
    // Unary rows.
    for (label, op, expected) in [
        ("unary: +, -", UnaryOp::Neg, OpClass::Strong),
        ("!", UnaryOp::LogicalNot, OpClass::None),
    ] {
        let got = classify_unary(op);
        if got != expected {
            all_ok = false;
        }
        println!(
            "{:<16} {:>10} {:>10}   ({})",
            label,
            cls(got),
            "n/a",
            cls(expected)
        );
    }
    assert!(classify_unary(UnaryOp::Pos) == OpClass::Strong);

    println!();
    println!("documented extensions beyond the paper's table:");
    println!(
        "  /   -> ({}, {})  (classified with %)",
        cls(classify_binary(BinaryOp::Div).0),
        cls(classify_binary(BinaryOp::Div).1)
    );
    println!(
        "  ~   -> {}          (bit-preserving, like ^)",
        cls(classify_unary(UnaryOp::BitNot))
    );
    println!(
        "  <,> -> ({}, {})  (boolean result, like &&)",
        cls(classify_binary(BinaryOp::Lt).0),
        cls(classify_binary(BinaryOp::Lt).1)
    );
    println!();
    println!(
        "result: {}",
        if all_ok {
            "MATCHES the paper's Table 1"
        } else {
            "MISMATCH"
        }
    );
    assert!(all_ok, "Table 1 classification diverged from the paper");
}
