//! Measures what the profiler costs when it is *not* running — the price
//! every user pays — and when it is.
//!
//! Disabled, a span's only profiler work is one relaxed atomic load (the
//! span-stack enable check), so the pipeline must stay within 2% of a
//! build with no profiler at all. With the span stacks forced on, every
//! span push/pops two atomics; with the sampler thread running at the
//! default 1 kHz, add one registry walk per millisecond. Both enabled
//! figures are reported; only the disabled one is asserted, since that is
//! the default state.
//!
//! Self-timed like `obs_overhead.rs`: median of repeated runs, no
//! benchmarking dependencies.

use std::hint::black_box;
use std::time::{Duration, Instant};

use cla_cfront::MemoryFs;
use cla_core::pipeline::{analyze, PipelineOptions};
use cla_workload::{by_name, generate, GenOptions};

/// Runs `f` repeatedly and returns the median per-iteration time.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> Duration {
    for _ in 0..2 {
        black_box(f());
    }
    let mut samples = Vec::new();
    let budget = Instant::now();
    while samples.len() < 30 && budget.elapsed() < Duration::from_secs(3) {
        let t = Instant::now();
        black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    println!("{name:32} {median:>12.2?}   ({} samples)", samples.len());
    median
}

fn main() {
    let spec = by_name("vortex").unwrap();
    let w = generate(
        spec,
        &GenOptions {
            scale: 0.05,
            files: 4,
            ..Default::default()
        },
    );
    let mut fs = MemoryFs::new();
    for (p, c) in &w.files {
        fs.add(p.clone(), c.clone());
    }
    let files: Vec<&str> = w.source_files();
    let opts = PipelineOptions::default();
    let run = |fs: &MemoryFs| analyze(fs, &files, &opts).expect("pipeline");

    println!("== prof overhead (vortex @ 5%, {} files) ==", files.len());

    // Default state: no profiler, span stacks off.
    assert!(
        !cla_obs::spanstack::enabled(),
        "bench must start with span stacks disabled"
    );
    let baseline = bench("pipeline, profiler absent", || run(&fs));

    // Span stacks forced on, no sampler: the pure push/pop cost.
    cla_obs::spanstack::enable();
    let stacks_on = bench("pipeline, span stacks on", || run(&fs));
    cla_obs::spanstack::disable();

    // Full profiler: stacks + 1 kHz sampler thread.
    let profiler = cla_prof::Profiler::start_default();
    let sampled = bench("pipeline, sampler at 1 kHz", || run(&fs));
    let profile = profiler.stop();
    println!(
        "  ({} samples collected over the sampled runs)",
        profile.samples
    );

    assert!(
        !cla_obs::spanstack::enabled(),
        "profiler did not release the span stacks"
    );

    let pct = |num: Duration, den: Duration| {
        (num.as_secs_f64() - den.as_secs_f64()) / den.as_secs_f64() * 100.0
    };
    println!(
        "span stacks on: {:+.1}%   sampler on: {:+.1}%",
        pct(stacks_on, baseline),
        pct(sampled, baseline)
    );

    // The <2% assertion. Sequential before/after timing cannot hold a 2%
    // bound on a shared machine (frequency drift alone exceeds it), so the
    // two states are *interleaved*: each round runs the pipeline once in
    // each state. The within-round order alternates too — the second run
    // of a round is reliably faster (warm caches), and alternating makes
    // that bias hit both series equally. The median difference then
    // isolates what a retired profiler actually leaves behind.
    let mut never = Vec::new();
    let mut retired = Vec::new();
    // Every timed run is the second of a back-to-back burst, so both
    // series are equally cache-warm. The retired burst additionally runs a
    // full profiler cycle first; its untimed first run also absorbs the
    // cycle's transient (thread join, Profile teardown), which is not the
    // durable state this bench asserts on.
    let measure_never = |never: &mut Vec<Duration>| {
        black_box(run(&fs));
        let t = Instant::now();
        black_box(run(&fs));
        never.push(t.elapsed());
    };
    let measure_retired = |retired: &mut Vec<Duration>| {
        let p = cla_prof::Profiler::start_default();
        drop(p.stop());
        black_box(run(&fs));
        let t = Instant::now();
        black_box(run(&fs));
        retired.push(t.elapsed());
    };
    for round in 0..48 {
        if round % 2 == 0 {
            measure_never(&mut never);
            measure_retired(&mut retired);
        } else {
            measure_retired(&mut retired);
            measure_never(&mut never);
        }
    }
    // Matched pairs: each round's two runs are adjacent in time, so drift
    // cancels within the pair and the per-round relative difference is the
    // clean signal. The assertion allows two standard errors of headroom
    // on top of the 2% budget — on a quiet machine that's a fraction of a
    // percent, and on a noisy shared runner it widens exactly as much as
    // the measurements themselves are untrustworthy, instead of flaking.
    let diffs: Vec<f64> = never
        .iter()
        .zip(&retired)
        .map(|(n, r)| (r.as_secs_f64() - n.as_secs_f64()) / n.as_secs_f64() * 100.0)
        .collect();
    let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / (diffs.len() - 1) as f64;
    let stderr = (var / diffs.len() as f64).sqrt();
    println!(
        "disabled-mode overhead (matched pairs): {mean:+.2}% ± {stderr:.2}% over {} rounds",
        diffs.len()
    );
    assert!(
        mean < 2.0 + 2.0 * stderr,
        "profiler-retired runs are {mean:.2}% ± {stderr:.2}% slower than profiler-never runs — state leaked"
    );
}
