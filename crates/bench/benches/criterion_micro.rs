//! Criterion micro-benchmarks of the system's kernels: lexing, parsing,
//! lowering, object-file encode/decode, and the three solvers.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use cla_cfront::{lexer, parser, FileId, MemoryFs, PpOptions};
use cla_cladb::{write_object, Database};
use cla_core::{solve_database, solve_unit, steensgaard, worklist, SolveOptions};
use cla_ir::{compile_file, CompiledUnit, LowerOptions};
use cla_workload::{by_name, generate, GenOptions};

/// A mid-size program used by every micro-benchmark (vortex profile at 2%).
fn sample_program() -> (CompiledUnit, String) {
    let spec = by_name("vortex").unwrap();
    let w = generate(spec, &GenOptions { scale: 0.02, files: 4, ..Default::default() });
    let mut fs = MemoryFs::new();
    let mut all_src = String::new();
    for (p, c) in &w.files {
        fs.add(p.clone(), c.clone());
        if p.ends_with(".c") {
            all_src.push_str(c);
        }
    }
    let mut units = Vec::new();
    for f in w.source_files() {
        units.push(
            compile_file(&fs, f, &PpOptions::default(), &LowerOptions::default())
                .expect("compile")
                .0,
        );
    }
    let (program, _) = cla_cladb::link(&units, "bench");
    // A single concatenated source for frontend benches (without includes).
    let src = w
        .files
        .iter()
        .filter(|(p, _)| p.ends_with(".c"))
        .map(|(_, c)| {
            c.lines()
                .filter(|l| !l.starts_with("#include"))
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect::<Vec<_>>()
        .join("\n");
    (program, src)
}

fn bench_frontend(c: &mut Criterion) {
    let (_, src) = sample_program();
    // A deduplicated single file parses standalone (each file redefines the
    // shared pool), so lex+parse just the first file's worth.
    let first: String = src.lines().take(2000).collect::<Vec<_>>().join("\n");
    c.bench_function("lex", |b| {
        b.iter(|| lexer::lex(black_box(&first), FileId(0)).unwrap().len())
    });
    let toks = lexer::lex(&first, FileId(0)).unwrap();
    c.bench_function("parse", |b| {
        b.iter_batched(
            || toks.clone(),
            |t| parser::parse(t, "bench.c").map(|tu| tu.items.len()),
            BatchSize::SmallInput,
        )
    });
}

fn bench_database(c: &mut Criterion) {
    let (program, _) = sample_program();
    c.bench_function("object_file_write", |b| {
        b.iter(|| write_object(black_box(&program)).len())
    });
    let bytes = write_object(&program);
    c.bench_function("object_file_open", |b| {
        b.iter(|| Database::open(black_box(bytes.clone())).unwrap().objects().len())
    });
    let db = Database::open(bytes).unwrap();
    c.bench_function("block_fetch", |b| {
        let n = db.objects().len() as u32;
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 97) % n;
            db.block(cla_ir::ObjId(i)).unwrap().len()
        })
    });
}

fn bench_solvers(c: &mut Criterion) {
    let (program, _) = sample_program();
    let bytes = write_object(&program);
    c.bench_function("solve_pretransitive", |b| {
        b.iter(|| solve_unit(black_box(&program), SolveOptions::default()).0.relations())
    });
    c.bench_function("solve_pretransitive_demand", |b| {
        b.iter_batched(
            || Database::open(bytes.clone()).unwrap(),
            |db| solve_database(&db, SolveOptions::default()).0.relations(),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("solve_pretransitive_nocache", |b| {
        b.iter(|| {
            solve_unit(
                black_box(&program),
                SolveOptions { cache: false, cycle_elim: true },
            )
            .0
            .relations()
        })
    });
    c.bench_function("solve_worklist", |b| {
        b.iter(|| worklist::solve(black_box(&program)).relations())
    });
    c.bench_function("solve_steensgaard", |b| {
        b.iter(|| steensgaard::solve(black_box(&program)).relations())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_frontend, bench_database, bench_solvers
);
criterion_main!(benches);
