//! Table 2: benchmark characteristics.
//!
//! Generates each synthetic benchmark at the harness scale, runs the real
//! compile + link phases, and prints lines of code, object size, program
//! variables, and the counts of the five primitive assignment forms — side
//! by side with the paper's numbers scaled by the same factor.

use cla_bench::{fmt_count, fmt_mb, header, materialize, scale};
use cla_cladb::write_object;
use cla_core::pipeline::PipelineOptions;
use cla_ir::compile_file;
use cla_workload::PAPER_BENCHMARKS;

fn main() {
    header("Table 2: Benchmarks (generated vs paper x scale)");
    let sc = scale();
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>10} {:>10} {:>8} {:>7} {:>7} {:>7}",
        "bench", "LOC", "objMB", "vars", "x=y", "x=&y", "*x=y", "*x=*y", "x=*y", "files"
    );
    for spec in &PAPER_BENCHMARKS {
        let (fs, w) = materialize(spec);
        let opts = PipelineOptions::default();
        let mut units = Vec::new();
        for f in w.source_files() {
            let (unit, _) = compile_file(&fs, f, &opts.pp, &opts.lower).expect("compile");
            units.push(unit);
        }
        let (program, _) = cla_cladb::link(&units, spec.name);
        let bytes = write_object(&program);
        let c = program.assign_counts();
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>10} {:>10} {:>8} {:>7} {:>7} {:>7}",
            spec.name,
            fmt_count(w.total_lines() as u64),
            fmt_mb(bytes.len()),
            fmt_count(program.program_variable_count() as u64),
            fmt_count(c.copy as u64),
            fmt_count(c.addr as u64),
            fmt_count(c.store as u64),
            fmt_count(c.store_load as u64),
            fmt_count(c.load as u64),
            w.source_files().len(),
        );
        let t = |v: u32| fmt_count((f64::from(v) * sc) as u64);
        println!(
            "{:<8} {:>9} {:>9} {:>9} {:>10} {:>10} {:>8} {:>7} {:>7}",
            "  paper*",
            if spec.loc_source > 0 {
                t(spec.loc_source)
            } else {
                "-".into()
            },
            "-",
            t(spec.variables),
            t(spec.copy),
            t(spec.addr),
            t(spec.store),
            t(spec.store_load),
            t(spec.load),
        );
    }
    println!("\n(paper* rows are the published Table 2 values multiplied by the scale factor)");
}
