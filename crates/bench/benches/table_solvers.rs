//! §6 comparison: the pre-transitive solver against a transitively closed
//! worklist Andersen baseline and Steensgaard's unification-based analysis.
//!
//! The literature context the paper cites: the best transitive-closure
//! Andersen implementations took hundreds of seconds and >150MB on 500KLOC
//! (Rountev–Chandra, Su et al.), while Steensgaard is fast but coarse (Das).
//! Expected shape here: pre-transitive and worklist agree exactly, with the
//! pre-transitive solver using (far) less memory; Steensgaard is fastest
//! and strictly coarser.

use cla_bench::{fmt_count, fmt_mb, header, materialize};
use cla_core::pipeline::PipelineOptions;
use cla_core::{solve_unit, steensgaard, worklist, SolveOptions};
use cla_ir::compile_file;
use cla_workload::PAPER_BENCHMARKS;
use std::time::Instant;

fn main() {
    header("§6: solver comparison (pre-transitive vs worklist Andersen vs Steensgaard)");
    println!(
        "{:<8} | {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>13}",
        "bench", "pre time", "pre mem", "wl time", "wl mem", "st time", "st rels"
    );
    for spec in &PAPER_BENCHMARKS {
        let (fs, w) = materialize(spec);
        let opts = PipelineOptions::default();
        let mut units = Vec::new();
        for f in w.source_files() {
            units.push(
                compile_file(&fs, f, &opts.pp, &opts.lower)
                    .expect("compile")
                    .0,
            );
        }
        let (program, _) = cla_cladb::link(&units, spec.name);

        let t = Instant::now();
        let (pre, pre_stats) = solve_unit(&program, SolveOptions::default());
        let pre_time = t.elapsed();

        let t = Instant::now();
        let (wl, wl_stats) = worklist::solve_with_stats(&program);
        let wl_time = t.elapsed();

        let t = Instant::now();
        let (st, _) = steensgaard::solve_with_stats(&program);
        let st_time = t.elapsed();

        // Correctness cross-checks: exact agreement between the Andersen
        // solvers, over-approximation by Steensgaard.
        assert_eq!(
            pre, wl,
            "{}: pre-transitive and worklist disagree",
            spec.name
        );
        assert!(
            pre.subsumed_by(&st),
            "{}: Steensgaard must over-approximate Andersen",
            spec.name
        );

        println!(
            "{:<8} | {:>8.3}s {:>9} | {:>8.3}s {:>9} | {:>8.3}s {:>13}",
            spec.name,
            pre_time.as_secs_f64(),
            fmt_mb(pre_stats.approx_bytes),
            wl_time.as_secs_f64(),
            fmt_mb(wl_stats.approx_bytes),
            st_time.as_secs_f64(),
            fmt_count(st.relations() as u64),
        );
        println!(
            "{:<8} |   relations: andersen {} / steensgaard {}",
            "",
            fmt_count(pre.relations() as u64),
            fmt_count(st.relations() as u64)
        );
    }
    println!("\n(both Andersen solvers verified to produce identical points-to sets;");
    println!(" Steensgaard verified to over-approximate them)");
}
