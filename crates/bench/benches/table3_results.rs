//! Table 3: the paper's main result — field-based Andersen analysis with
//! the pre-transitive solver and CLA demand loading, per benchmark.
//!
//! Prints pointer variables, points-to relations, analysis time, estimated
//! solver memory, and the in-core / loaded / in-file assignment accounting,
//! next to the paper's published row (absolute numbers differ — different
//! machine and synthetic workloads — the *shape* is the claim: sub-second
//! analysis, small in-core fraction, loaded < in-file).

use cla_bench::{fmt_count, fmt_mb, header, materialize};
use cla_core::pipeline::{analyze, PipelineOptions};
use cla_workload::{table3, PAPER_BENCHMARKS};

fn main() {
    header("Table 3: Results (pre-transitive solver, field-based, demand loading)");
    println!(
        "{:<8} {:>9} {:>13} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "bench", "ptr vars", "relations", "analyze", "space", "in core", "loaded", "in file"
    );
    for spec in &PAPER_BENCHMARKS {
        let (fs, w) = materialize(spec);
        let sources = w.source_files();
        let opts = PipelineOptions {
            parallel_compile: true,
            ..Default::default()
        };
        let analysis = analyze(&fs, &sources, &opts).expect("pipeline");
        let r = &analysis.report;
        println!(
            "{:<8} {:>9} {:>13} {:>8.3}s {:>9} {:>9} {:>10} {:>10}",
            spec.name,
            fmt_count(r.pointer_variables as u64),
            fmt_count(r.relations as u64),
            r.solve_time.as_secs_f64(),
            fmt_mb(r.approx_analysis_bytes()),
            fmt_count(r.assigns_in_core() as u64),
            fmt_count(r.load_stats.assigns_loaded),
            fmt_count(r.load_stats.assigns_in_file),
        );
        if let Some(p) = table3(spec.name) {
            println!(
                "{:<8} {:>9} {:>13} {:>8.3}s {:>9} {:>9} {:>10} {:>10}",
                "  paper",
                fmt_count(u64::from(p.pointer_variables)),
                fmt_count(p.relations),
                p.user_time_s,
                format!("{:.1}MB", p.space_mb),
                fmt_count(u64::from(p.assigns_in_core)),
                fmt_count(u64::from(p.assigns_loaded)),
                fmt_count(u64::from(p.assigns_in_file)),
            );
        }
        // The structural claims of the table must hold at any scale.
        assert!(
            r.assigns_in_core() < r.load_stats.assigns_loaded as usize,
            "{}: in-core must be a fraction of loaded",
            spec.name
        );
        assert!(
            r.load_stats.assigns_loaded <= r.load_stats.assigns_in_file,
            "{}: demand loading must not read more than the file holds",
            spec.name
        );
    }
    println!("\n(paper rows are full-scale results on an 800MHz Pentium III; ours are");
    println!(" synthetic workloads at CLA_SCALE — compare shapes, not absolute values)");
}
