//! Figure 3: the example program and the derivation of `y -> &x`.
//!
//! Runs the deductive oracle (Figure 2's rules, literally) and all three
//! production solvers on the example and checks they all derive `y -> &x`.

use cla_cladb::{write_object, Database};
use cla_core::{deductive, solve_database, solve_unit, steensgaard, worklist, SolveOptions};
use cla_ir::{compile_source, LowerOptions};

fn main() {
    cla_bench::header("Figure 3: deriving y -> &x");
    let src = "int x, *y;\nint **z;\nvoid f(void) { z = &y; *z = &x; }\n";
    println!("program:\n{src}");
    let unit = compile_source(src, "fig3.c", &LowerOptions::default()).expect("compile");
    println!("primitive assignments:\n{}", unit.dump_assigns());

    let y = unit.find_object("y").unwrap();
    let x = unit.find_object("x").unwrap();
    let z = unit.find_object("z").unwrap();

    let oracle = deductive::solve_oracle(&unit);
    println!("deductive system (Figure 2 rules):");
    println!("  z -> &y : {}", oracle.may_point_to(z, y));
    println!(
        "  y -> &x : {}  (the derivation of Figure 3)",
        oracle.may_point_to(y, x)
    );
    assert!(oracle.may_point_to(z, y));
    assert!(oracle.may_point_to(y, x));

    let (pre, _) = solve_unit(&unit, SolveOptions::default());
    let wl = worklist::solve(&unit);
    let st = steensgaard::solve(&unit);
    let db = Database::open(write_object(&unit)).unwrap();
    let (dbp, _) = solve_database(&db, SolveOptions::default());

    for (name, p) in [
        ("pre-transitive", &pre),
        ("worklist Andersen", &wl),
        ("Steensgaard", &st),
        ("pre-transitive (demand-loaded)", &dbp),
    ] {
        let ok = p.may_point_to(y, x);
        println!("  {name:<32} derives y -> &x : {ok}");
        assert!(ok, "{name} failed to derive y -> &x");
    }
    assert_eq!(
        pre, oracle,
        "pre-transitive must match the deductive system exactly"
    );
    assert_eq!(dbp, oracle, "demand-loaded solve must match too");
    println!("\nresult: all solvers derive Figure 3's conclusion");
}
