//! Micro-benchmarks of the system's kernels: lexing, parsing, lowering,
//! object-file encode/decode, and the three solvers.
//!
//! Self-timed (median of repeated runs) rather than statistics-heavy: the
//! harness needs to run in minimal environments with no benchmarking
//! dependencies.

use std::hint::black_box;
use std::time::{Duration, Instant};

use cla_cfront::{lexer, parser, FileId, MemoryFs, PpOptions};
use cla_cladb::{write_object, Database};
use cla_core::{solve_database, solve_unit, steensgaard, worklist, SolveOptions};
use cla_ir::{compile_file, CompiledUnit, LowerOptions};
use cla_workload::{by_name, generate, GenOptions};

/// Runs `f` repeatedly and prints the median per-iteration time.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warm up, then time individual iterations until we have 20 samples or
    // have spent ~2s, whichever comes first.
    for _ in 0..2 {
        black_box(f());
    }
    let mut samples = Vec::new();
    let budget = Instant::now();
    while samples.len() < 20 && budget.elapsed() < Duration::from_secs(2) {
        let t = Instant::now();
        black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    println!("{name:32} {median:>12.2?}   ({} samples)", samples.len());
}

/// A mid-size program used by every micro-benchmark (vortex profile at 2%).
fn sample_program() -> (CompiledUnit, String) {
    let spec = by_name("vortex").unwrap();
    let w = generate(
        spec,
        &GenOptions {
            scale: 0.02,
            files: 4,
            ..Default::default()
        },
    );
    let mut fs = MemoryFs::new();
    for (p, c) in &w.files {
        fs.add(p.clone(), c.clone());
    }
    let mut units = Vec::new();
    for f in w.source_files() {
        units.push(
            compile_file(&fs, f, &PpOptions::default(), &LowerOptions::default())
                .expect("compile")
                .0,
        );
    }
    let (program, _) = cla_cladb::link(&units, "bench");
    // A single concatenated source for frontend benches (without includes).
    let src = w
        .files
        .iter()
        .filter(|(p, _)| p.ends_with(".c"))
        .map(|(_, c)| {
            c.lines()
                .filter(|l| !l.starts_with("#include"))
                .collect::<Vec<_>>()
                .join("\n")
        })
        .collect::<Vec<_>>()
        .join("\n");
    (program, src)
}

fn bench_frontend(src: &str) {
    // A deduplicated single file parses standalone (each file redefines the
    // shared pool), so lex+parse just the first file's worth.
    let first: String = src.lines().take(2000).collect::<Vec<_>>().join("\n");
    bench("lex", || {
        lexer::lex(black_box(&first), FileId(0)).unwrap().len()
    });
    let toks = lexer::lex(&first, FileId(0)).unwrap();
    bench("parse", || {
        parser::parse(toks.clone(), "bench.c").map(|tu| tu.items.len())
    });
}

fn bench_database(program: &CompiledUnit) {
    bench("object_file_write", || {
        write_object(black_box(program)).len()
    });
    let bytes = write_object(program);
    bench("object_file_open", || {
        Database::open(black_box(bytes.clone()))
            .unwrap()
            .objects()
            .len()
    });
    let db = Database::open(bytes).unwrap();
    let n = db.objects().len() as u32;
    let mut i = 0u32;
    bench("block_fetch", || {
        i = (i + 97) % n;
        db.block(cla_ir::ObjId(i)).unwrap().len()
    });
}

fn bench_solvers(program: &CompiledUnit) {
    let bytes = write_object(program);
    bench("solve_pretransitive", || {
        solve_unit(black_box(program), SolveOptions::default())
            .0
            .relations()
    });
    bench("solve_pretransitive_demand", || {
        let db = Database::open(bytes.clone()).unwrap();
        solve_database(&db, SolveOptions::default()).0.relations()
    });
    bench("solve_pretransitive_nocache", || {
        solve_unit(
            black_box(program),
            SolveOptions {
                cache: false,
                cycle_elim: true,
            },
        )
        .0
        .relations()
    });
    bench("solve_worklist", || {
        worklist::solve(black_box(program)).relations()
    });
    bench("solve_steensgaard", || {
        steensgaard::solve(black_box(program)).relations()
    });
}

fn main() {
    cla_bench::header("micro-benchmarks: frontend, database, solver kernels");
    let (program, src) = sample_program();
    bench_frontend(&src);
    bench_database(&program);
    bench_solvers(&program);
}
