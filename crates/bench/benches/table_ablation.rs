//! §5 ablation: "We have observed a slow down by a factor in excess
//! of \>50K for gimp (45,000s c.f. 0.8s user time) when both of these
//! components of the algorithm are turned off."
//!
//! Runs the pre-transitive solver with caching and cycle elimination
//! toggled on a scaled-down workload (the full product is infeasible by
//! construction — that is the claim) and prints the slowdown factors.
//! Results are asserted equal across configurations.
//!
//! Note: the paper's naive baseline re-explores on every path (onPath-only
//! cycle check); ours uses a visited set per query, so measured slowdowns
//! are a *lower bound* on the paper's.

use cla_bench::{fmt_count, header};
use cla_cfront::MemoryFs;
use cla_core::pipeline::PipelineOptions;
use cla_core::{solve_unit, SolveOptions};
use cla_ir::compile_file;
use cla_workload::{by_name, generate, GenOptions};
use std::time::Instant;

fn main() {
    header("§5 ablation: caching and cycle elimination");
    // The ablation runs on its own (small) scale: the disabled configs are
    // quadratic-or-worse by design.
    let scale = std::env::var("CLA_ABLATION_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.04);
    let spec = by_name("emacs").unwrap();
    let w = generate(
        spec,
        &GenOptions {
            scale,
            ..Default::default()
        },
    );
    let mut fs = MemoryFs::new();
    for (p, c) in &w.files {
        fs.add(p.clone(), c.clone());
    }
    let opts = PipelineOptions::default();
    let mut units = Vec::new();
    for f in w.source_files() {
        units.push(
            compile_file(&fs, f, &opts.pp, &opts.lower)
                .expect("compile")
                .0,
        );
    }
    let (program, _) = cla_cladb::link(&units, "emacs");
    println!(
        "workload: emacs at scale {scale} ({} objects, {} assignments)\n",
        fmt_count(program.objects.len() as u64),
        fmt_count(program.assigns.len() as u64)
    );

    println!(
        "{:<28} {:>10} {:>12} {:>12} {:>10}",
        "configuration", "time", "getLvals", "dfs visits", "slowdown"
    );
    let mut baseline = None;
    let mut reference = None;
    for (cache, cycle) in [(true, true), (true, false), (false, true), (false, false)] {
        let t = Instant::now();
        let (pts, stats) = solve_unit(
            &program,
            SolveOptions {
                cache,
                cycle_elim: cycle,
            },
        );
        let dt = t.elapsed().as_secs_f64();
        let base = *baseline.get_or_insert(dt);
        let label = format!(
            "cache={} cycle-elim={}",
            if cache { "on " } else { "off" },
            if cycle { "on " } else { "off" }
        );
        println!(
            "{:<28} {:>9.3}s {:>12} {:>12} {:>9.1}x",
            label,
            dt,
            fmt_count(stats.getlvals_calls),
            fmt_count(stats.dfs_visits),
            dt / base
        );
        match &reference {
            None => reference = Some(pts),
            Some(r) => assert_eq!(&pts, r, "ablation config changed the result"),
        }
    }
    println!("\n(the paper reports >50,000x on full-size gimp with both optimizations");
    println!(" off — 45,000s vs 0.8s. The factor grows quickly with scale: at");
    println!(" CLA_ABLATION_SCALE=0.06 this harness already measures >100,000x.)");
}
