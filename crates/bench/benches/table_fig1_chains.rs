//! Figure 1: the struct program fragment and its dependence results.
//!
//! Runs the dependence analysis on the paper's exact example and prints the
//! chains in the paper's rendering.

use cla_cfront::MemoryFs;
use cla_core::pipeline::{analyze, PipelineOptions};
use cla_depend::{DependOptions, DependenceAnalysis};

fn main() {
    cla_bench::header("Figure 1: dependence results for the struct example");
    let mut fs = MemoryFs::new();
    fs.add(
        "eg1.c",
        "short target;
struct S { short x; short y; };
short u, *v, w;
struct S s, t;
void f(void) {
  v = &w;
  u = target;
  *v = u;
  s.x = w;
}
",
    );
    let analysis = analyze(&fs, &["eg1.c"], &PipelineOptions::default()).expect("pipeline");
    let dep = DependenceAnalysis::new(&analysis.database, &analysis.points_to);
    let report = dep
        .analyze("target", &DependOptions::default())
        .expect("target exists");

    println!("target: target (declared <eg1.c:1>)\n");
    print!("{}", dep.render_report(&report));

    let names: Vec<String> = report
        .dependents()
        .iter()
        .map(|d| analysis.database.object(d.obj).name.clone())
        .collect();
    println!("\npaper's expected dependents: u, w, S.x");
    for expected in ["u", "w", "S.x"] {
        assert!(
            names.contains(&expected.to_string()),
            "missing dependent {expected}"
        );
    }
    assert!(
        !names.contains(&"S.y".to_string()),
        "S.y must not be dependent"
    );
    assert!(!names.contains(&"t".to_string()), "t must not be dependent");
    println!("result: MATCHES Figure 1");
}
