//! Table 4: effect of a field-independent treatment of structs.
//!
//! Runs each benchmark twice — once field-based (the paper's default), once
//! field-independent — and prints pointers / relations / time / space for
//! both, next to the paper's rows. The expected shape: field-independent is
//! slower and larger, dramatically so on struct-heavy code (the paper
//! measures 30x on gimp and 300x on lucent).

use cla_bench::{fmt_count, fmt_mb, header, materialize};
use cla_core::pipeline::{analyze, PipelineOptions, Report};
use cla_ir::LowerOptions;
use cla_workload::{table3, table4, PAPER_BENCHMARKS};

fn run(spec: &cla_workload::BenchSpec, lower: LowerOptions) -> Report {
    let (fs, w) = materialize(spec);
    let sources = w.source_files();
    let opts = PipelineOptions {
        parallel_compile: true,
        lower,
        ..Default::default()
    };
    analyze(&fs, &sources, &opts).expect("pipeline").report
}

fn main() {
    header("Table 4: field-based vs field-independent structs");
    println!(
        "{:<8} | {:>9} {:>13} {:>9} {:>9} | {:>9} {:>13} {:>9} {:>9}",
        "",
        "fb ptrs",
        "fb rels",
        "fb time",
        "fb space",
        "fi ptrs",
        "fi rels",
        "fi time",
        "fi space"
    );
    for spec in &PAPER_BENCHMARKS {
        let fb = run(spec, LowerOptions::default());
        let fi = run(spec, LowerOptions::default().field_independent());
        println!(
            "{:<8} | {:>9} {:>13} {:>8.3}s {:>9} | {:>9} {:>13} {:>8.3}s {:>9}",
            spec.name,
            fmt_count(fb.pointer_variables as u64),
            fmt_count(fb.relations as u64),
            fb.solve_time.as_secs_f64(),
            fmt_mb(fb.approx_analysis_bytes()),
            fmt_count(fi.pointer_variables as u64),
            fmt_count(fi.relations as u64),
            fi.solve_time.as_secs_f64(),
            fmt_mb(fi.approx_analysis_bytes()),
        );
        if let (Some(p3), Some(p4)) = (table3(spec.name), table4(spec.name)) {
            println!(
                "{:<8} | {:>9} {:>13} {:>8.3}s {:>9} | {:>9} {:>13} {:>8.3}s {:>9}",
                "  paper",
                fmt_count(u64::from(p3.pointer_variables)),
                fmt_count(p3.relations),
                p3.user_time_s,
                format!("{:.1}MB", p3.space_mb),
                fmt_count(u64::from(p4.pointer_variables)),
                fmt_count(p4.relations),
                p4.user_time_s,
                format!("{:.1}MB", p4.space_mb),
            );
        }
    }
    println!("\n(the paper cautions its field-independent numbers are preliminary; the");
    println!(" claim reproduced here is the *direction*: field-independent relations and");
    println!(" times blow up on struct-heavy code)");
}
