//! Snapshot round-trip cost across program scales: encode/save time and
//! size, open + load time, and first-query latency on the restored graph,
//! compared against the solve the snapshot replaces.
//!
//! The load column is the price of a warm start; the solve column is what
//! it saves. The gap widens with program size because loading is linear in
//! the *solution* (representatives + distinct sets) while solving walks
//! the assignment graph to a fixpoint.

use std::hint::black_box;
use std::time::Instant;

use cla_cfront::PpOptions;
use cla_cladb::{fnv64, link, write_object, Database};
use cla_core::pipeline::Provenance;
use cla_core::{SolveOptions, Warm};
use cla_ir::{compile_file, LowerOptions, ObjId};
use cla_snap::{encode_snapshot, save_snapshot, Snapshot};
use cla_workload::{by_name, generate, GenOptions};

/// Compiles + links one workload profile into a database.
fn build_database(spec_name: &str, scale: f64) -> Database {
    let spec = by_name(spec_name).unwrap();
    let w = generate(
        spec,
        &GenOptions {
            scale,
            files: 4,
            ..Default::default()
        },
    );
    let mut fs = cla_cfront::MemoryFs::new();
    for (p, c) in &w.files {
        fs.add(p.clone(), c.clone());
    }
    let units: Vec<_> = w
        .source_files()
        .iter()
        .map(|f| {
            compile_file(&fs, f, &PpOptions::default(), &LowerOptions::default())
                .unwrap()
                .0
        })
        .collect();
    let (program, _) = link(&units, "bench");
    Database::open(write_object(&program)).unwrap()
}

fn main() {
    cla_bench::header("snapshot round trip: save/load cost vs the solve it replaces");
    println!(
        "{:<10} {:>8} {:>10} {:>9} {:>9} {:>9} {:>9} {:>11}",
        "profile", "objects", "snap size", "solve", "encode", "save", "load", "first query"
    );

    let opts = SolveOptions::default();
    let tmp = std::env::temp_dir().join(format!("cla-snap-rt-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    for (spec, scale_frac) in [
        ("nethack", 0.25),
        ("nethack", 1.0),
        ("vortex", 0.5),
        ("gcc", 0.25),
    ] {
        let scale = scale_frac * cla_bench::scale() / 0.1;
        let db = build_database(spec, scale);
        let names: Vec<String> = db.objects().iter().map(|o| o.name.clone()).collect();
        let prov = Provenance {
            inputs: vec![("bench".to_string(), 0xbeef)],
            options_fp: 1,
            solver: opts,
        };

        let t0 = Instant::now();
        let sealed = Warm::from_database(&db, opts).seal();
        let solve = t0.elapsed();

        let t0 = Instant::now();
        let bytes = encode_snapshot(&prov, &sealed, &names);
        let encode = t0.elapsed();

        let path = tmp.join(format!("{spec}-{scale_frac}.clasnap"));
        let t0 = Instant::now();
        let size = save_snapshot(&path, &prov, &sealed, &names).unwrap();
        let save = t0.elapsed();
        assert_eq!(size, bytes.len());

        let t0 = Instant::now();
        let snap = Snapshot::open(&path).unwrap();
        let restored = snap.load_sealed().unwrap();
        let load = t0.elapsed();

        // First query on the restored graph (the end of the warm-start
        // critical path), on a variable with a nonempty answer.
        let var = (0..names.len() as u32)
            .map(ObjId)
            .find(|&o| !restored.points_to(o).is_empty())
            .unwrap();
        let t0 = Instant::now();
        black_box(restored.points_to(var).len());
        let first = t0.elapsed();

        println!(
            "{:<10} {:>8} {:>10} {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>8.1}ms {:>9.1}us",
            format!("{spec}@{scale_frac}"),
            cla_bench::fmt_count(names.len() as u64),
            cla_bench::fmt_mb(size),
            solve.as_secs_f64() * 1e3,
            encode.as_secs_f64() * 1e3,
            save.as_secs_f64() * 1e3,
            load.as_secs_f64() * 1e3,
            first.as_secs_f64() * 1e6,
        );

        // The whole point: restoring must beat re-solving.
        black_box(fnv64(&bytes));
    }
    let _ = std::fs::remove_dir_all(&tmp);
}
