//! The headline rate table: cold compile-link-analyze over `cla-genc`
//! trees of increasing size, reported as lines per second.
//!
//! ```sh
//! cargo bench -p cla-bench --bench million                # quick (ci-small)
//! cargo bench -p cla-bench --bench million -- million     # the full row
//! ```
//!
//! The full million-line run with JSON output and CI assertions lives in
//! `examples/million_bench.rs`; this bench is the table-formatted view over
//! the shipped profiles.

use cla_bench::header;
use cla_core::pipeline::{analyze, PipelineOptions};
use cla_genc::{generate_to_dir, Profile};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Locates a shipped profile whether the bench runs from the workspace
/// root or from the package directory.
fn profile_path(name: &str) -> PathBuf {
    let direct = PathBuf::from(format!("profiles/{name}.toml"));
    if direct.exists() {
        return direct;
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../profiles/{name}.toml"))
}

fn main() {
    let which = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "ci-small".to_string());
    header("the headline rate: a million lines of C in a second");
    println!(
        "{:<10} {:>10} {:>7} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "profile", "loc", "files", "gen", "compile", "link", "solve", "lines/sec"
    );

    let profile = Profile::load(&profile_path(&which))
        .unwrap_or_else(|e| panic!("cannot load profile `{which}`: {e}"));
    let dir = std::env::temp_dir().join(format!("cla-bench-million-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let t = Instant::now();
    let gen = generate_to_dir(&profile, profile.seed, &dir).expect("generate");
    let gen_time = t.elapsed();

    let mut files: Vec<String> = (0..profile.files)
        .map(|i| {
            dir.join(cla_genc::file_name(&profile, i))
                .display()
                .to_string()
        })
        .collect();
    files.sort();
    let refs: Vec<&str> = files.iter().map(String::as_str).collect();
    let opts = PipelineOptions {
        parallel_compile: true,
        ..Default::default()
    };
    let t = Instant::now();
    let analysis = analyze(&cla_cfront::OsFs, &refs, &opts).expect("analyze");
    let wall = t.elapsed();
    let r = &analysis.report;
    println!(
        "{:<10} {:>10} {:>7} {:>8.2}s {:>8.2}s {:>8.2}s {:>8.2}s {:>12.0}",
        profile.name,
        gen.loc,
        gen.files,
        gen_time.as_secs_f64(),
        r.compile_time.as_secs_f64(),
        r.link_time.as_secs_f64(),
        r.solve_time.as_secs_f64(),
        gen.loc as f64 / wall.as_secs_f64(),
    );
    println!(
        "jobs={} peak-buffered-units={} peak-rss={:.0}MB variables={} relations={}",
        r.jobs,
        r.peak_buffered_units,
        r.peak_rss_bytes as f64 / 1e6,
        r.program_variables,
        r.relations
    );
    let _ = std::fs::remove_dir_all(&dir);
}
