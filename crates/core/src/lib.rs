//! # cla-core — points-to solvers
//!
//! The algorithmic contribution of the paper: the pre-transitive graph
//! solver for Andersen's analysis ([`solve_unit`] / [`solve_database`]),
//! plus the comparison baselines the evaluation discusses — a classic
//! transitively-closed worklist Andersen solver ([`worklist::solve`]) and a
//! Steensgaard unification-based analysis ([`steensgaard::solve`]) — and an
//! executable encoding of the paper's deduction rules used as a test oracle
//! ([`deductive::solve_oracle`]).
//!
//! ```
//! use cla_ir::{compile_source, LowerOptions};
//! use cla_core::{solve_unit, SolveOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let unit = compile_source(
//!     "int x, *y; int **z; void f(void) { z = &y; *z = &x; }",
//!     "fig3.c", &LowerOptions::default())?;
//! let (pts, _) = solve_unit(&unit, SolveOptions::default());
//! let y = unit.find_object("y").unwrap();
//! let x = unit.find_object("x").unwrap();
//! assert!(pts.may_point_to(y, x)); // Figure 3: y -> &x
//! # Ok(())
//! # }
//! ```

pub mod bitvector;
pub mod deductive;
pub mod frontfuzz;
pub mod pipeline;
mod pretransitive;
mod solution;
pub mod steensgaard;
pub mod worklist;

pub use pretransitive::{solve_database, solve_unit, SealedGraph, SolveOptions, SolveStats, Warm};
pub use solution::{PointsTo, PointsToQuery};

#[cfg(test)]
mod tests {
    use super::*;
    use cla_ir::{compile_source, CompiledUnit, LowerOptions};

    pub(crate) fn unit_of(src: &str) -> CompiledUnit {
        compile_source(src, "t.c", &LowerOptions::default()).unwrap()
    }

    /// Programs used for cross-solver agreement checks.
    pub(crate) const PROGRAMS: &[&str] = &[
        "int x, *y; int **z; void f(void) { z = &y; *z = &x; }",
        "int v, w, *a, *b, *c; void f(void) { a = b; b = c; c = a; a = &v; c = &w; }",
        "int x, y, *p, *q, **pp; void f(void) { p = &x; q = &y; pp = &p; *pp = q; p = *pp; }",
        "int a, *pa, *pb, **x, **y; void f(void) { pa = &a; x = &pa; y = &pb; *y = *x; }",
        "int x; int *id(int *a) { return a; } int *(*fp)(int *); int *r;
         void main_(void) { fp = id; r = fp(&x); }",
        "struct S { int *f; } s, t; int z; int *r;
         void main_(void) { s.f = &z; r = t.f; }",
        "int a, b, c, *p, **pp; void f(void) { p = &a; pp = &p; *pp = &b; *pp = &c; }",
        "void *malloc(unsigned long); int **h; int *v;
         void f(void) { h = malloc(8); *h = v; v = *h; }",
    ];

    #[test]
    fn pretransitive_matches_oracle_on_suite() {
        for src in PROGRAMS {
            let unit = unit_of(src);
            let oracle = deductive::solve_oracle(&unit);
            let (got, _) = solve_unit(&unit, SolveOptions::default());
            assert_eq!(got, oracle, "mismatch on {src}");
        }
    }

    #[test]
    fn worklist_matches_oracle_on_suite() {
        for src in PROGRAMS {
            let unit = unit_of(src);
            let oracle = deductive::solve_oracle(&unit);
            let got = worklist::solve(&unit);
            assert_eq!(got, oracle, "mismatch on {src}");
        }
    }

    #[test]
    fn bitvector_matches_oracle_on_suite() {
        for src in PROGRAMS {
            let unit = unit_of(src);
            let oracle = deductive::solve_oracle(&unit);
            let got = bitvector::solve(&unit);
            assert_eq!(got, oracle, "mismatch on {src}");
        }
    }

    #[test]
    fn steensgaard_over_approximates_on_suite() {
        for src in PROGRAMS {
            let unit = unit_of(src);
            let andersen = deductive::solve_oracle(&unit);
            let steens = steensgaard::solve(&unit);
            assert!(
                andersen.subsumed_by(&steens),
                "Steensgaard must over-approximate Andersen on {src}"
            );
        }
    }
}
