//! Baseline: subset-based Andersen's analysis over bit vectors.
//!
//! The paper (§4) mentions that the CLA infrastructure hosted "a number of
//! different subset-based points-to analysis implementations (including an
//! implementation based on bit-vectors ...)". This is that implementation:
//! points-to sets are dense bit sets over the *address-taken* objects
//! (objects that ever appear in an `x = &y` or carry a function
//! signature), propagated to a fixpoint over the inclusion graph.
//!
//! Dense sets make unions cheap per word but materialize every set in
//! full — the memory behaviour the pre-transitive algorithm is designed to
//! avoid. The solver exists as a baseline and as an independent
//! implementation for differential testing.

use crate::solution::PointsTo;
use cla_ir::{AssignKind, CompiledUnit, ObjId};
use std::collections::HashMap;

/// A dense bit set over the compact lval universe.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn new(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        self.words[w] != old
    }

    #[cfg(test)]
    fn contains(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// `self |= other`; returns true when anything changed.
    fn union_in(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| (w >> b) & 1 == 1)
                .map(move |b| wi * 64 + b)
        })
    }

    fn approx_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

/// Per-run counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct BitVectorStats {
    /// Fixpoint iterations over the constraint system.
    pub iterations: usize,
    /// Word-level union operations.
    pub unions: u64,
    /// Rough live-memory estimate in bytes (the dense sets dominate).
    pub approx_bytes: usize,
}

/// Runs the bit-vector Andersen solver over a fully loaded unit.
pub fn solve(unit: &CompiledUnit) -> PointsTo {
    solve_with_stats(unit).0
}

/// Runs the bit-vector Andersen solver, also returning counters.
pub fn solve_with_stats(unit: &CompiledUnit) -> (PointsTo, BitVectorStats) {
    let n = unit.objects.len();
    let mut stats = BitVectorStats::default();

    // Compact lval universe: objects that can be pointed at.
    let mut lval_of: HashMap<u32, usize> = HashMap::new();
    let mut lvals: Vec<u32> = Vec::new();
    for a in &unit.assigns {
        if a.kind == AssignKind::Addr && !lval_of.contains_key(&a.src.0) {
            lval_of.insert(a.src.0, lvals.len());
            lvals.push(a.src.0);
        }
    }
    for s in &unit.funsigs {
        if !s.is_indirect && !lval_of.contains_key(&s.obj.0) {
            lval_of.insert(s.obj.0, lvals.len());
            lvals.push(s.obj.0);
        }
    }
    let universe = lvals.len();

    let mut pts: Vec<BitSet> = vec![BitSet::new(universe); n];
    let mut edges: Vec<Vec<u32>> = vec![Vec::new(); n]; // src -> dsts
    let mut edge_set: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let mut loads: Vec<(u32, u32)> = Vec::new(); // (dst, ptr)
    let mut stores: Vec<(u32, u32)> = Vec::new(); // (ptr, src)
    let add_edge = |edges: &mut Vec<Vec<u32>>,
                    edge_set: &mut std::collections::HashSet<u64>,
                    from: u32,
                    to: u32| {
        if from != to && edge_set.insert((u64::from(from) << 32) | u64::from(to)) {
            edges[from as usize].push(to);
        }
    };

    for a in &unit.assigns {
        match a.kind {
            AssignKind::Copy => add_edge(&mut edges, &mut edge_set, a.src.0, a.dst.0),
            AssignKind::Addr => {
                let l = lval_of[&a.src.0];
                pts[a.dst.index()].insert(l);
            }
            AssignKind::Load => loads.push((a.dst.0, a.src.0)),
            AssignKind::Store => stores.push((a.dst.0, a.src.0)),
            AssignKind::StoreLoad => {
                // Split with a synthetic node appended past the objects.
                let t = pts.len() as u32;
                pts.push(BitSet::new(universe));
                edges.push(Vec::new());
                loads.push((t, a.src.0));
                stores.push((a.dst.0, t));
            }
        }
    }

    // Indirect calls.
    let direct: HashMap<u32, (Vec<u32>, u32)> = unit
        .funsigs
        .iter()
        .filter(|s| !s.is_indirect)
        .map(|s| (s.obj.0, (s.params.iter().map(|p| p.0).collect(), s.ret.0)))
        .collect();
    let indirect: Vec<(u32, Vec<u32>, u32)> = unit
        .funsigs
        .iter()
        .filter(|s| s.is_indirect)
        .map(|s| (s.obj.0, s.params.iter().map(|p| p.0).collect(), s.ret.0))
        .collect();

    // Naive fixpoint: propagate along edges and process complex constraints
    // until nothing changes. Dense unions keep per-iteration cost low.
    loop {
        stats.iterations += 1;
        let edges_before = edge_set.len();
        let mut changed = false;
        // Copy edges. (Indexed loops: `pts` is mutably split per edge, so
        // iterator-based traversal would fight the borrow checker.)
        #[allow(clippy::needless_range_loop)]
        for from in 0..edges.len() {
            for i in 0..edges[from].len() {
                let to = edges[from][i] as usize;
                if from == to {
                    continue;
                }
                let (a, b) = if from < to {
                    let (lo, hi) = pts.split_at_mut(to);
                    (&lo[from], &mut hi[0])
                } else {
                    let (lo, hi) = pts.split_at_mut(from);
                    (&hi[0], &mut lo[to])
                };
                stats.unions += 1;
                changed |= b.union_in(a);
            }
        }
        // Loads: dst ⊇ pts(o) for every o in pts(ptr).
        for &(dst, ptr) in &loads {
            let ones: Vec<usize> = pts[ptr as usize].iter_ones().collect();
            for l in ones {
                let o = lvals[l];
                add_edge(&mut edges, &mut edge_set, o, dst);
            }
        }
        // Stores: pts(o) ⊇ pts(src) for every o in pts(ptr).
        for &(ptr, src) in &stores {
            let ones: Vec<usize> = pts[ptr as usize].iter_ones().collect();
            for l in ones {
                let o = lvals[l];
                add_edge(&mut edges, &mut edge_set, src, o);
            }
        }
        // Indirect calls.
        for (fp, params, ret) in &indirect {
            let ones: Vec<usize> = pts[*fp as usize].iter_ones().collect();
            for l in ones {
                let g = lvals[l];
                if let Some((gparams, gret)) = direct.get(&g) {
                    for (k, fp_param) in params.iter().enumerate() {
                        if let Some(gp) = gparams.get(k) {
                            add_edge(&mut edges, &mut edge_set, *fp_param, *gp);
                        }
                    }
                    add_edge(&mut edges, &mut edge_set, *gret, *ret);
                }
            }
        }
        changed |= edge_set.len() != edges_before;
        if !changed {
            break;
        }
    }

    stats.approx_bytes =
        pts.iter().map(BitSet::approx_bytes).sum::<usize>() + edge_set.capacity() * 8;
    let result: Vec<Vec<ObjId>> = (0..n)
        .map(|i| pts[i].iter_ones().map(|l| ObjId(lvals[l])).collect())
        .collect();
    (PointsTo::new(result, &unit.objects), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deductive::solve_oracle;
    use cla_ir::{compile_source, LowerOptions};

    fn unit_of(src: &str) -> CompiledUnit {
        compile_source(src, "t.c", &LowerOptions::default()).unwrap()
    }

    #[test]
    fn bitset_ops() {
        let mut b = BitSet::new(130);
        assert!(b.insert(0));
        assert!(b.insert(64));
        assert!(b.insert(129));
        assert!(!b.insert(129));
        assert!(b.contains(64));
        assert!(!b.contains(63));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        let mut c = BitSet::new(130);
        assert!(c.union_in(&b));
        assert!(!c.union_in(&b));
    }

    #[test]
    fn figure3() {
        let unit = unit_of("int x, *y; int **z; void f(void) { z = &y; *z = &x; }");
        let p = solve(&unit);
        let y = unit.find_object("y").unwrap();
        let x = unit.find_object("x").unwrap();
        assert!(p.may_point_to(y, x));
    }

    #[test]
    fn matches_oracle_on_suite() {
        for src in crate::tests::PROGRAMS {
            let unit = unit_of(src);
            let oracle = solve_oracle(&unit);
            let got = solve(&unit);
            assert_eq!(got, oracle, "bit-vector solver diverged on {src}");
        }
    }

    #[test]
    fn stats_populated() {
        let unit = unit_of("int x, *p, *q; void f(void) { p = &x; q = p; }");
        let (_, stats) = solve_with_stats(&unit);
        assert!(stats.iterations >= 1);
        assert!(stats.approx_bytes > 0);
    }
}
