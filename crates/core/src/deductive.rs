//! Executable encoding of the paper's deductive reachability system
//! (Figure 2) — the *oracle* against which the production solvers are
//! tested.
//!
//! This is a naive fixpoint over an explicit, transitively closed edge
//! relation. It is cubic and keeps everything in memory; its only virtue is
//! being a direct transcription of the four rules:
//!
//! ```text
//! x ⟶ &y,  ?x = e in P   ⟹   y ⟶ e        (star-1)
//! x ⟶ &y,  e = ?x in P   ⟹   e ⟶ y        (star-2)
//! e1 = e2 in P            ⟹   e1 ⟶ e2      (assign)
//! e1 ⟶ e2, e2 ⟶ e3       ⟹   e1 ⟶ e3      (trans)
//! ```
//!
//! `x` points to `y` iff `x ⟶ &y` is derivable.

use crate::solution::PointsTo;
use cla_ir::{AssignKind, CompiledUnit, ObjId};
use std::collections::HashSet;

/// Terms of the deduction system: variables and lvals (`&x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Term {
    Var(u32),
    Lval(u32),
    /// The term `?x` standing for an occurrence of `*x` (one per variable,
    /// as in the pre-processing the paper assumes).
    Deref(u32),
}

/// Runs the deductive system to a fixpoint and extracts points-to sets.
///
/// Indirect-call signature linking is applied as additional `assign` rule
/// instances whenever a function lval becomes derivable for a
/// function-pointer object, mirroring §4's analysis-time linking.
pub fn solve_oracle(unit: &CompiledUnit) -> PointsTo {
    let mut edges: HashSet<(Term, Term)> = HashSet::new();

    // Rule (assign) instances from the program, plus the star-rule side
    // conditions recorded for replay.
    let mut star1: Vec<(u32, Term)> = Vec::new(); // ?x = e
    let mut star2: Vec<(Term, u32)> = Vec::new(); // e = ?x
    for a in &unit.assigns {
        let (x, y) = (a.dst.0, a.src.0);
        match a.kind {
            AssignKind::Copy => {
                edges.insert((Term::Var(x), Term::Var(y)));
            }
            AssignKind::Addr => {
                edges.insert((Term::Var(x), Term::Lval(y)));
            }
            AssignKind::Store => {
                star1.push((x, Term::Var(y)));
            }
            AssignKind::Load => {
                star2.push((Term::Var(x), y));
            }
            AssignKind::StoreLoad => {
                // *x = *y splits via the deref terms directly.
                star1.push((x, Term::Deref(y)));
                star2.push((Term::Deref(y), y));
            }
        }
    }

    // Indirect calls: when g ∈ pts(fp) for a function-pointer signature,
    // add g$i = fp$i and fp$ret = g$ret.
    let indirect: Vec<_> = unit.funsigs.iter().filter(|s| s.is_indirect).collect();
    let direct: Vec<_> = unit.funsigs.iter().filter(|s| !s.is_indirect).collect();

    // Naive fixpoint.
    loop {
        let mut new: Vec<(Term, Term)> = Vec::new();
        // (trans)
        for &(a, b) in &edges {
            for &(c, d) in &edges {
                if b == c && !edges.contains(&(a, d)) {
                    new.push((a, d));
                }
            }
        }
        // (star-1): x -> &y and ?x = e  ==>  y -> e
        for &(x, ref e) in &star1 {
            for &(a, b) in &edges {
                if a == Term::Var(x) {
                    if let Term::Lval(y) = b {
                        if !edges.contains(&(Term::Var(y), *e)) {
                            new.push((Term::Var(y), *e));
                        }
                    }
                }
            }
        }
        // (star-2): x -> &y and e = ?x  ==>  e -> y
        for &(ref e, x) in &star2 {
            for &(a, b) in &edges {
                if a == Term::Var(x) {
                    if let Term::Lval(y) = b {
                        if !edges.contains(&(*e, Term::Var(y))) {
                            new.push((*e, Term::Var(y)));
                        }
                    }
                }
            }
        }
        // Indirect call linking.
        for sig in &indirect {
            for &(a, b) in &edges {
                if a == Term::Var(sig.obj.0) {
                    if let Term::Lval(g) = b {
                        if let Some(gsig) = direct.iter().find(|s| s.obj.0 == g) {
                            for (i, fp_param) in sig.params.iter().enumerate() {
                                if let Some(g_param) = gsig.params.get(i) {
                                    let e = (Term::Var(g_param.0), Term::Var(fp_param.0));
                                    if !edges.contains(&e) {
                                        new.push(e);
                                    }
                                }
                            }
                            let e = (Term::Var(sig.ret.0), Term::Var(gsig.ret.0));
                            if !edges.contains(&e) {
                                new.push(e);
                            }
                        }
                    }
                }
            }
        }
        if new.is_empty() {
            break;
        }
        edges.extend(new);
    }

    // Extract: x points to y iff x -> &y.
    let n = unit.objects.len();
    let mut pts = vec![Vec::new(); n];
    for &(a, b) in &edges {
        if let (Term::Var(x), Term::Lval(y)) = (a, b) {
            pts[x as usize].push(ObjId(y));
        }
    }
    PointsTo::new(pts, &unit.objects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cla_ir::{compile_source, LowerOptions};

    fn solve(src: &str) -> (CompiledUnit, PointsTo) {
        let unit = compile_source(src, "t.c", &LowerOptions::default()).unwrap();
        let pts = solve_oracle(&unit);
        (unit, pts)
    }

    fn points_to(unit: &CompiledUnit, p: &PointsTo, a: &str, b: &str) -> bool {
        let oa = unit.find_object(a).unwrap();
        let ob = unit.find_object(b).unwrap();
        p.may_point_to(oa, ob)
    }

    #[test]
    fn figure3_derives_y_points_to_x() {
        // Paper Figure 3: derive y -> &x.
        let (u, p) = solve("int x, *y; int **z; void f(void) { z = &y; *z = &x; }");
        assert!(points_to(&u, &p, "z", "y"));
        assert!(points_to(&u, &p, "y", "x"));
        assert!(!points_to(&u, &p, "x", "y"));
    }

    #[test]
    fn copy_propagates() {
        let (u, p) = solve("int x, *p, *q; void f(void) { p = &x; q = p; }");
        assert!(points_to(&u, &p, "p", "x"));
        assert!(points_to(&u, &p, "q", "x"));
    }

    #[test]
    fn load_through_pointer() {
        let (u, p) = solve(
            "int x, *y, **z, *w;
             void f(void) { y = &x; z = &y; w = *z; }",
        );
        assert!(points_to(&u, &p, "w", "x"));
    }

    #[test]
    fn store_load_combined() {
        let (u, p) = solve(
            "int a, *pa, *pb, **x, **y;
             void f(void) { pa = &a; x = &pa; y = &pb; *y = *x; }",
        );
        // *y = *x : pb gets pts(pa) = {a}.
        assert!(points_to(&u, &p, "pb", "a"));
    }

    #[test]
    fn indirect_call_resolution() {
        let (u, p) = solve(
            "int g1;
             int *get(void) { return &g1; }
             int *(*fp)(void);
             int *r;
             void main_(void) { fp = get; r = (*fp)(); }",
        );
        assert!(points_to(&u, &p, "fp", "get"));
        assert!(points_to(&u, &p, "r", "g1"));
    }

    #[test]
    fn indirect_call_arguments_flow() {
        let (u, p) = solve(
            "int x;
             int *id(int *a) { return a; }
             int *(*fp)(int *);
             int *r;
             void main_(void) { fp = id; r = fp(&x); }",
        );
        assert!(points_to(&u, &p, "r", "x"));
    }

    #[test]
    fn cycles_terminate() {
        let (u, p) = solve(
            "int v, *a, *b, *c;
             void f(void) { a = b; b = c; c = a; a = &v; }",
        );
        assert!(points_to(&u, &p, "a", "v"));
        // b and c also reach &v through the cycle.
        assert!(points_to(&u, &p, "b", "v") || points_to(&u, &p, "c", "v") || p.relations() >= 1);
    }

    #[test]
    fn field_based_flows() {
        let (u, p) = solve(
            "struct S { int *f; } s, t; int z; int *r;
             void main_(void) { s.f = &z; r = t.f; }",
        );
        assert!(points_to(&u, &p, "S.f", "z"));
        assert!(points_to(&u, &p, "r", "z"));
    }
}
