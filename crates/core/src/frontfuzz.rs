//! Frontend fault harness: hostile-input fuzzing of the compile phase.
//!
//! The sibling of `cla_cladb::fault` (object format) and
//! `cla_snap::fault` (snapshot format), aimed at the layer that consumes
//! *source bytes*: preprocessor, lexer, parser, and lowering. Mutants of a
//! seed corpus — byte flips, truncations, token splices from other corpus
//! files, deep-nesting injections, macro bombs, and include splices — are
//! pushed through the real [`cla_ir::compile_file`] under a
//! [`FrontendLimits`] budget, asserting the quarantine invariant:
//!
//! > every input produces a typed [`CError`](cla_cfront::CError) or a valid
//! > compiled unit — never a panic, and never an unbounded stall past the
//! > configured deadline.
//!
//! Determinism: the mutant stream is a pure function of `(corpus, seed)`,
//! via the same [`SplitMix64`] generator the database harness uses, so a
//! failing iteration number reproduces exactly.

use cla_cfront::{FrontendLimits, MemoryFs, PpOptions};
use cla_cladb::fault::{with_quiet_panics, SplitMix64};
use cla_ir::{compile_file, LowerOptions};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Budget used by the harness unless the caller overrides it: tight enough
/// that nesting/macro bombs die in milliseconds, loose enough that every
/// legitimate corpus file compiles untouched.
#[must_use]
pub fn fuzz_limits() -> FrontendLimits {
    FrontendLimits {
        macro_fuel: 200_000,
        max_tokens: 4_000_000,
        max_parser_depth: 64,
        deadline_ms: 2_000,
    }
}

/// Outcome tally of one fuzz run. `ok()` is the CI gate.
#[derive(Debug, Default)]
pub struct FrontFuzzReport {
    /// Mutants compiled end to end.
    pub exercised: u64,
    /// Mutants that compiled to a valid unit.
    pub compiled: u64,
    /// Mutants rejected with a typed error.
    pub rejected: u64,
    /// Typed rejections that were budget overruns specifically.
    pub budget_rejected: u64,
    /// Invariant violations: `(iteration, file, panic message)`.
    pub panics: Vec<(u64, String, String)>,
    /// Invariant violations: `(iteration, file, wall time)` for compiles
    /// that blew far past the configured deadline.
    pub overruns: Vec<(u64, String, Duration)>,
}

impl FrontFuzzReport {
    /// True when no mutant panicked or stalled past the deadline.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.panics.is_empty() && self.overruns.is_empty()
    }
}

impl fmt::Display for FrontFuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "front-fuzz: {} mutants exercised, {} compiled, {} rejected ({} budget)",
            self.exercised, self.compiled, self.rejected, self.budget_rejected
        )?;
        for (it, file, msg) in &self.panics {
            writeln!(f, "  PANIC at iter {it} ({file}): {msg}")?;
        }
        for (it, file, dt) in &self.overruns {
            writeln!(f, "  DEADLINE OVERRUN at iter {it} ({file}): {dt:?}")?;
        }
        if self.ok() {
            write!(f, "front-fuzz OK: no panics, no deadline overruns")?;
        } else {
            write!(
                f,
                "front-fuzz FAILED: {} panics, {} overruns",
                self.panics.len(),
                self.overruns.len()
            )?;
        }
        Ok(())
    }
}

/// A preprocessor bomb: 2^24 expansions requested, far past the harness
/// fuel, so splicing it anywhere must yield a typed budget error.
const MACRO_BOMB: &str = "#define B0 x x\n#define B1 B0 B0\n#define B2 B1 B1\n\
#define B3 B2 B2\n#define B4 B3 B3\n#define B5 B4 B4\n#define B6 B5 B5\n\
#define B7 B6 B6\n#define B8 B7 B7\n#define B9 B8 B8\n#define B10 B9 B9\n\
#define B11 B10 B10\n#define B12 B11 B11\nint bomb = B12;\n";

/// Produces one deterministic mutant of the corpus: the mutated main file's
/// bytes plus its name. `rng` drives every choice.
fn mutate(corpus: &[(String, String)], rng: &mut SplitMix64) -> (String, Vec<u8>) {
    let (name, text) = &corpus[rng.below(corpus.len() as u64) as usize];
    let mut bytes = text.clone().into_bytes();
    match rng.below(6) {
        // Seeded byte flips: 1..=16 single-bit corruptions.
        0 => {
            for _ in 0..=rng.below(16) {
                if bytes.is_empty() {
                    break;
                }
                let i = rng.below(bytes.len() as u64) as usize;
                bytes[i] ^= 1 << rng.below(8);
            }
        }
        // Truncation at an arbitrary offset.
        1 => {
            let at = rng.below(bytes.len() as u64 + 1) as usize;
            bytes.truncate(at);
        }
        // Token splice: a random slice of a random corpus file dropped at
        // a random position (models merge damage and editor accidents).
        2 => {
            let (_, donor) = &corpus[rng.below(corpus.len() as u64) as usize];
            let d = donor.as_bytes();
            if !d.is_empty() {
                let a = rng.below(d.len() as u64) as usize;
                let b = (a + rng.below(256) as usize).min(d.len());
                let at = rng.below(bytes.len() as u64 + 1) as usize;
                bytes.splice(at..at, d[a..b].iter().copied());
            }
        }
        // Deep nesting: up to 2^15 open parens/braces, which must hit the
        // parser depth budget, not the thread's stack guard.
        3 => {
            let depth = 1u64 << (5 + rng.below(11));
            let ch = if rng.below(2) == 0 { b'(' } else { b'{' };
            let at = rng.below(bytes.len() as u64 + 1) as usize;
            bytes.splice(at..at, std::iter::repeat_n(ch, depth as usize));
        }
        // Macro bomb prepended to the unit: dies on expansion fuel.
        4 => {
            bytes.splice(0..0, MACRO_BOMB.bytes());
        }
        // Include splice: a random corpus file, possibly the mutant itself
        // (a direct cycle) — must yield a typed include error, never an
        // infinite include stack.
        5 => {
            let (target, _) = &corpus[rng.below(corpus.len() as u64) as usize];
            let inc = format!("#include \"{target}\"\n");
            let at = rng.below(bytes.len() as u64 + 1) as usize;
            bytes.splice(at..at, inc.bytes());
        }
        _ => unreachable!(),
    }
    (name.clone(), bytes)
}

/// Runs `iters` mutants of `corpus` through the real compile path under
/// `limits`, recording every panic and deadline overrun. The corpus is a
/// list of `(file name, C source)` pairs; every file is visible to the
/// preprocessor, so `#include` splices resolve against real text.
#[must_use]
pub fn run_front_fuzz(
    corpus: &[(String, String)],
    seed: u64,
    iters: u64,
    limits: &FrontendLimits,
) -> FrontFuzzReport {
    assert!(!corpus.is_empty(), "front-fuzz needs a non-empty corpus");
    let mut report = FrontFuzzReport::default();
    let opts = PpOptions {
        limits: limits.clone(),
        ..PpOptions::default()
    };
    let lower = LowerOptions::default();
    // A stalled compile is only a violation well past the deadline: budget
    // checks are periodic (every N lines / parser entries), so overruns are
    // bounded by one check interval plus scheduler noise, not zero.
    let grace = Duration::from_millis(limits.deadline_ms.max(1) * 4 + 2_000);
    with_quiet_panics(|| {
        let mut rng = SplitMix64(seed);
        for it in 0..iters {
            let (name, bytes) = mutate(corpus, &mut rng);
            let mutant = String::from_utf8_lossy(&bytes).into_owned();
            let mut fs = MemoryFs::new();
            for (n, t) in corpus {
                if n != &name {
                    fs.add(n.clone(), t.clone());
                }
            }
            fs.add(name.clone(), mutant);
            report.exercised += 1;
            let t = Instant::now();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                compile_file(&fs, &name, &opts, &lower).map(|_| ())
            }));
            let dt = t.elapsed();
            if limits.deadline_ms != 0 && dt > grace {
                report.overruns.push((it, name.clone(), dt));
            }
            match outcome {
                Ok(Ok(())) => report.compiled += 1,
                Ok(Err(e)) => {
                    report.rejected += 1;
                    if e.is_budget() {
                        report.budget_rejected += 1;
                    }
                }
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    report.panics.push((it, name.clone(), msg));
                }
            }
        }
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<(String, String)> {
        vec![
            (
                "a.c".to_string(),
                "#include \"h.h\"\nint x, *p;\nvoid f(void) { p = &x; }\n".to_string(),
            ),
            (
                "b.c".to_string(),
                "extern int *p; int *q;\nvoid g(void) { q = p; }\n".to_string(),
            ),
            (
                "h.h".to_string(),
                "#define PTR(t) t *\ntypedef struct P { int v; } P;\n".to_string(),
            ),
        ]
    }

    #[test]
    fn mutants_never_panic_or_stall() {
        let report = run_front_fuzz(&corpus(), 42, 400, &fuzz_limits());
        assert_eq!(report.exercised, 400);
        assert!(report.ok(), "{report}");
        // The mutation mix must actually exercise both outcomes.
        assert!(report.rejected > 0, "{report}");
        assert!(report.compiled > 0, "{report}");
    }

    #[test]
    fn bombs_are_budget_rejections() {
        // Seeds chosen only for coverage: across a few hundred mutants the
        // bomb/nesting arms fire many times, and each must land in the
        // typed-budget bucket rather than panic or stall.
        let report = run_front_fuzz(&corpus(), 7, 300, &fuzz_limits());
        assert!(report.ok(), "{report}");
        assert!(report.budget_rejected > 0, "{report}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = run_front_fuzz(&corpus(), 9, 100, &fuzz_limits());
        let b = run_front_fuzz(&corpus(), 9, 100, &fuzz_limits());
        assert_eq!(a.exercised, b.exercised);
        assert_eq!(a.compiled, b.compiled);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.budget_rejected, b.budget_rejected);
    }
}
