//! The pre-transitive graph algorithm for Andersen's analysis (paper §5,
//! Figure 5).
//!
//! The constraint graph is *never* transitively closed. An edge `n_x → n_y`
//! means `pts(x) ⊇ pts(y)`; the points-to set of `x` (`getLvals`) is the
//! union of `baseElements` over all nodes reachable from `n_x`. The
//! algorithm iterates over the complex assignments, adding edges derived
//! from current `getLvals` results, until a pass adds nothing.
//!
//! Two optimizations make this practical (the paper measures a >50,000×
//! slowdown with both off):
//!
//! * **Reachability caching** — `getLvals` results are cached for the
//!   duration of one pass; stale results are safe because any change that
//!   could make them stale also forces another pass.
//! * **Cycle elimination** — reachability is computed with an iterative
//!   Tarjan SCC walk; every strongly connected component discovered is
//!   collapsed into one node (the paper's `unifyNode` with skip pointers).
//!   Cycle detection is free during the traversal, and all cycles in the
//!   traversed region are found.
//!
//! The solver can run from a fully decoded [`CompiledUnit`], or directly
//! from a [`Database`] with CLA demand loading: an object's assignment block
//! is fetched only when its points-to set first becomes (potentially)
//! non-empty, and `x = y` / `x = &y` records are discarded immediately after
//! being integrated into the graph (the paper's load-and-throw-away
//! strategy); only complex assignments stay in core.
//!
//! The solved graph outlives the solve: [`Warm`] detaches the fixpointed
//! [`GraphState`] from the database borrow so a resident server can answer
//! `getLvals` queries repeatedly. At fixpoint no query can load new blocks
//! or add edges, so the per-pass reachability cache — queried at one frozen
//! epoch — becomes a perfect cross-query cache, and Tarjan keeps collapsing
//! any cycles the extraction pass never walked.

use crate::solution::{PointsTo, PointsToQuery};
use cla_cladb::Database;
use cla_ir::{AssignKind, CompiledUnit, FunSig, ObjId, ObjectInfo, PrimAssign};
use std::collections::HashMap;
use std::sync::Arc;

/// Tuning knobs for the pre-transitive solver (the §5 ablation).
///
/// Equality matters: snapshot provenance (`cla-snap`) compares the options a
/// graph was solved with against the options a loader wants, and falls back
/// to a full solve on any difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveOptions {
    /// Cache `getLvals` results across queries within one pass.
    pub cache: bool,
    /// Collapse strongly connected components during reachability.
    pub cycle_elim: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            cache: true,
            cycle_elim: true,
        }
    }
}

/// Counters describing one solver run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SolveStats {
    /// Passes of the iteration algorithm (Figure 5's outer loop).
    pub passes: usize,
    /// Top-level `getLvals` invocations.
    pub getlvals_calls: u64,
    /// Nodes expanded during reachability traversals.
    pub dfs_visits: u64,
    /// Queries answered from the pass cache.
    pub cache_hits: u64,
    /// Node unifications performed by cycle elimination.
    pub unifications: u64,
    /// Edges inserted into the pre-transitive graph.
    pub edges_added: u64,
    /// `getLvals` results that reused an existing identical set (the
    /// paper's shared-lval-sets enhancement).
    pub sets_shared: u64,
    /// Complex assignments resident in memory at the end (Table 3
    /// "in core").
    pub complex_in_core: usize,
    /// Total graph nodes (objects + deref/split temporaries).
    pub nodes: usize,
    /// Rough live-memory estimate of solver structures, in bytes.
    pub approx_bytes: usize,
}

/// Registered complex assignment, in terms of graph nodes.
#[derive(Debug, Clone, Copy)]
enum Complex {
    /// `*x = y`
    Store { x: u32, y: u32 },
    /// `x = *y`, with the dedicated `n_*y` node.
    Load { yderef: u32, y: u32 },
}

/// An indirect-call site signature in terms of graph nodes.
#[derive(Debug, Clone)]
struct IndirectSig {
    fp: u32,
    params: Vec<u32>,
    ret: u32,
}

/// All solver state except the database handle: the pre-transitive graph,
/// demand-loading bookkeeping, complex-assignment residue, and the
/// reachability caches. Owning no borrow, it can be kept resident (inside
/// [`Warm`]) and shipped across threads after the driver finishes.
struct GraphState {
    opts: SolveOptions,

    // --- graph ---
    skip: Vec<u32>,
    out: Vec<Vec<u32>>,
    base: Vec<Vec<u32>>,
    edge_set: std::collections::HashSet<u64>,

    // --- demand loading / activation ---
    active: Vec<bool>,
    pending: Vec<Vec<u32>>,
    /// Objects attached to a node whose blocks have not been loaded yet.
    node_objs: Vec<Vec<u32>>,
    loaded: Vec<bool>,
    act_queue: Vec<u32>,
    blocks_loaded: u64,

    // --- complex assignments & calls ---
    complex: Vec<Complex>,
    deref_node: HashMap<u32, u32>,
    indirect: Vec<IndirectSig>,
    direct_sigs: HashMap<u32, (Vec<u32>, u32)>,

    // --- reachability caching ---
    epoch: u32,
    cache_epoch: Vec<u32>,
    cache: Vec<Arc<Vec<u32>>>,
    empty: Arc<Vec<u32>>,
    /// Hash-consed lval sets ("many lval sets are identical"); flushed at
    /// the beginning of each pass, as in the paper.
    interner: std::collections::HashSet<Arc<Vec<u32>>>,
    interner_epoch: u32,

    // --- tarjan scratch (stamped per call) ---
    call_id: u32,
    visit_call: Vec<u32>,
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,

    stats: SolveStats,
}

/// The fixpoint driver: feeds assignments into the graph and, in database
/// mode, services demand loads until the iteration stabilizes.
struct Solver<'db> {
    db: Option<&'db Database>,
    g: GraphState,
    /// Cached handle: demand-loaded blocks dropped after integration
    /// (load-and-throw-away), mirrored into the global metric registry.
    obs_blocks_discarded: cla_obs::Counter,
}

/// Solves points-to over a fully loaded unit.
pub fn solve_unit(unit: &CompiledUnit, opts: SolveOptions) -> (PointsTo, SolveStats) {
    let mut warm = Warm::from_unit(unit, opts);
    let pts = warm.extract_points_to(&unit.objects);
    (pts, warm.stats())
}

/// Solves points-to directly from an object-file database with demand
/// loading (the CLA analyze phase).
///
/// # Panics
///
/// Panics when the database's assignment payload is corrupt (a database
/// that [`Database::open`] accepted but whose records fail to decode).
/// Validate untrusted files with [`Database::to_unit`] first.
pub fn solve_database(db: &Database, opts: SolveOptions) -> (PointsTo, SolveStats) {
    let mut warm = Warm::from_database(db, opts);
    let pts = warm.extract_points_to(db.objects());
    (pts, warm.stats())
}

/// A solved pre-transitive graph kept warm for repeated queries.
///
/// Produced by [`Warm::from_database`] (or [`Warm::from_unit`]); owns no
/// reference to the database it was solved from, so it can outlive it and
/// move across threads. Query methods take `&mut self` because `getLvals`
/// keeps improving the graph as it answers (path compression, Tarjan cycle
/// collapse, reachability caching at a frozen epoch) — wrap in a `Mutex`
/// to share between server workers.
pub struct Warm {
    g: GraphState,
    n_objects: usize,
}

impl Warm {
    /// Solves `unit` to fixpoint and returns the warm graph.
    pub fn from_unit(unit: &CompiledUnit, opts: SolveOptions) -> Warm {
        let mut sp = cla_obs::global().span("solve", "solve.fixpoint");
        sp.set("mode", "unit");
        let mut s = Solver {
            db: None,
            g: GraphState::new(unit.objects.len(), false, opts),
            obs_blocks_discarded: cla_obs::global().counter("cla_db_blocks_discarded_total"),
        };
        s.g.register_sigs(&unit.funsigs);
        for a in &unit.assigns {
            s.g.add_assign(a);
        }
        s.run();
        sp.set("passes", s.g.stats.passes);
        sp.set("edges_added", s.g.stats.edges_added);
        Warm::finish(s.g, unit.objects.len())
    }

    /// Solves `db` to fixpoint with demand loading and returns the warm
    /// graph. See [`solve_database`] for the panic conditions.
    pub fn from_database(db: &Database, opts: SolveOptions) -> Warm {
        let mut sp = cla_obs::global().span("solve", "solve.fixpoint");
        sp.set("mode", "database");
        let mut s = Solver {
            db: Some(db),
            g: GraphState::new(db.objects().len(), true, opts),
            obs_blocks_discarded: cla_obs::global().counter("cla_db_blocks_discarded_total"),
        };
        s.g.register_sigs(db.funsigs());
        // The static section (x = &y) is the starting point and is always
        // loaded (paper §4).
        let statics = db.static_assigns().expect("valid database");
        for a in &statics {
            s.g.add_assign(a);
        }
        s.run();
        // Reading the stats also publishes the demand-load deltas to the
        // global metrics registry (see `Database::load_stats`), so serve
        // sessions get fresh counters without touching the fetch hot path.
        let _ = db.load_stats();
        sp.set("passes", s.g.stats.passes);
        sp.set("edges_added", s.g.stats.edges_added);
        sp.set("blocks_loaded", s.g.blocks_loaded);
        Warm::finish(s.g, db.objects().len())
    }

    fn finish(mut g: GraphState, n_objects: usize) -> Warm {
        // One epoch bump after the last pass: everything cached from here on
        // is computed at fixpoint and stays valid for the lifetime of the
        // warm graph, so repeated queries for the same variable are cache
        // hits (visible as `SolveStats::cache_hits`).
        g.epoch += 1;
        Warm { g, n_objects }
    }

    /// The points-to set of `o`, as sorted object ids.
    pub fn points_to(&mut self, o: ObjId) -> Vec<ObjId> {
        self.points_to_raw(o).iter().map(|&v| ObjId(v)).collect()
    }

    /// Whether `*a` and `*b` can name the same object: the points-to sets
    /// of `a` and `b` intersect.
    pub fn may_alias(&mut self, a: ObjId, b: ObjId) -> bool {
        let sa = self.points_to_raw(a);
        let sb = self.points_to_raw(b);
        // Both sets are sorted; intersect by merge.
        let (mut i, mut j) = (0, 0);
        while i < sa.len() && j < sb.len() {
            match sa[i].cmp(&sb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    fn points_to_raw(&mut self, o: ObjId) -> Arc<Vec<u32>> {
        if (o.0 as usize) >= self.n_objects {
            return Arc::clone(&self.g.empty);
        }
        let r = self.g.find(o.0);
        if !self.g.active[r as usize] {
            return Arc::clone(&self.g.empty);
        }
        self.g.get_lvals(r)
    }

    /// Materializes the complete solution (every object's set). Cheap after
    /// cycle elimination — paper §5 — and each set computed here also lands
    /// in the query cache.
    pub fn extract_points_to(&mut self, objects: &[ObjectInfo]) -> PointsTo {
        let mut pts: Vec<Vec<ObjId>> = Vec::with_capacity(self.n_objects);
        for o in 0..self.n_objects as u32 {
            let r = self.g.find(o);
            if !self.g.active[r as usize] {
                pts.push(Vec::new());
                continue;
            }
            // Extraction honours the configured options: the paper ties
            // cheap compute-all-lvals directly to cycle elimination ("it is
            // typically much cheaper to compute all lvals for all nodes when
            // the algorithm terminates"), and the §5 ablation measures
            // exactly this cost.
            let lv = self.g.get_lvals(r);
            pts.push(lv.iter().map(|&v| ObjId(v)).collect());
        }
        PointsTo::new(pts, objects)
    }

    /// Current counters, including live in-core/size figures.
    pub fn stats(&self) -> SolveStats {
        let mut st = self.g.stats;
        st.complex_in_core = self.g.complex.len();
        st.nodes = self.g.skip.len();
        st.approx_bytes = self.g.approx_bytes();
        st
    }

    /// The number of objects in the solved program.
    pub fn object_count(&self) -> usize {
        self.n_objects
    }

    /// Freezes the solved graph into an immutable, `Sync` snapshot.
    ///
    /// Every object's `getLvals` result is materialized eagerly (cheap after
    /// cycle elimination, exactly like [`Warm::extract_points_to`]) and skip
    /// pointers are flattened away: objects that were unified into one
    /// strongly connected component share a single `Arc`'d set, as do
    /// distinct representatives whose sets hash-cons to the same value.
    /// The result answers queries on `&self` with no interior mutability at
    /// all, so any number of threads can read it concurrently without locks.
    pub fn seal(mut self) -> SealedGraph {
        let mut sp = cla_obs::global().span("solve", "solve.seal");
        sp.set("objects", self.n_objects);
        let empty: Arc<Vec<ObjId>> = Arc::new(Vec::new());
        // Sets coming out of the warm cache are shared Arcs (SCC members and
        // hash-consed duplicates); convert each distinct allocation once so
        // the snapshot preserves that sharing.
        let mut converted: HashMap<*const Vec<u32>, Arc<Vec<ObjId>>> = HashMap::new();
        let mut sets: Vec<Arc<Vec<ObjId>>> = Vec::with_capacity(self.n_objects);
        for o in 0..self.n_objects as u32 {
            let raw = self.points_to_raw(ObjId(o));
            let set = converted
                .entry(Arc::as_ptr(&raw))
                .or_insert_with(|| {
                    if raw.is_empty() {
                        Arc::clone(&empty)
                    } else {
                        Arc::new(raw.iter().map(|&v| ObjId(v)).collect())
                    }
                })
                .clone();
            sets.push(set);
        }
        let stats = self.stats();
        SealedGraph { sets, empty, stats }
    }
}

/// An immutable snapshot of a solved pre-transitive graph.
///
/// Produced by [`Warm::seal`]. Unlike [`Warm`], whose queries mutate the
/// graph (path compression, cache fills) and therefore need `&mut self` or a
/// mutex, a sealed graph is plain shared data: it is `Send + Sync`, all
/// query methods take `&self`, and readers never contend. This is the form a
/// server keeps resident — queries run lock-free against the snapshot while
/// a replacement is solved and sealed off to the side.
#[derive(Debug)]
pub struct SealedGraph {
    /// Per-object points-to set, indexed by object id; members of one
    /// collapsed SCC share a single allocation.
    sets: Vec<Arc<Vec<ObjId>>>,
    empty: Arc<Vec<ObjId>>,
    stats: SolveStats,
}

impl SealedGraph {
    /// Rebuilds a sealed graph from externally stored parts (the `cla-snap`
    /// snapshot loader). `sets[i]` is object `i`'s points-to set, sorted;
    /// callers preserve SCC/hash-cons sharing by cloning one `Arc` for every
    /// object of a shared set, exactly as [`Warm::seal`] produces it — the
    /// `ptr::eq` fast path in [`SealedGraph::may_alias`] depends on it.
    pub fn from_parts(sets: Vec<Arc<Vec<ObjId>>>, stats: SolveStats) -> SealedGraph {
        SealedGraph {
            sets,
            empty: Arc::new(Vec::new()),
            stats,
        }
    }

    /// The per-object sets with their sharing structure intact (one `Arc`
    /// clone per object; SCC members alias the same allocation). This is the
    /// serialization view used by the snapshot writer — compare with
    /// [`Arc::as_ptr`] to encode each distinct set once.
    pub fn sets(&self) -> &[Arc<Vec<ObjId>>] {
        &self.sets
    }

    /// The points-to set of `o`, as sorted object ids.
    pub fn points_to(&self, o: ObjId) -> &[ObjId] {
        self.sets.get(o.index()).map_or(&self.empty[..], |s| s)
    }

    /// Whether `*a` and `*b` can name the same object: the points-to sets
    /// of `a` and `b` intersect.
    pub fn may_alias(&self, a: ObjId, b: ObjId) -> bool {
        let sa = self.points_to(a);
        let sb = self.points_to(b);
        // Unified or hash-consed identical sets short-circuit.
        if !sa.is_empty() && std::ptr::eq(sa, sb) {
            return true;
        }
        // Both sets are sorted; intersect by merge.
        let (mut i, mut j) = (0, 0);
        while i < sa.len() && j < sb.len() {
            match sa[i].cmp(&sb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// The complete solution as a [`PointsTo`] (copies the sets).
    pub fn extract_points_to(&self, objects: &[ObjectInfo]) -> PointsTo {
        PointsTo::new(self.sets.iter().map(|s| (**s).clone()).collect(), objects)
    }

    /// Counters of the solve that produced this snapshot, frozen at seal
    /// time (including the cache traffic of the eager materialization).
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// The number of objects in the solved program.
    pub fn object_count(&self) -> usize {
        self.sets.len()
    }

    /// Rough live-memory estimate of the snapshot, in bytes. Shared sets
    /// are counted once.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut seen: std::collections::HashSet<*const Vec<ObjId>> =
            std::collections::HashSet::new();
        let mut bytes = self.sets.len() * size_of::<Arc<Vec<ObjId>>>();
        for s in &self.sets {
            if seen.insert(Arc::as_ptr(s)) {
                bytes += s.capacity() * size_of::<ObjId>();
            }
        }
        bytes
    }
}

impl PointsToQuery for SealedGraph {
    fn pointees(&self, obj: ObjId) -> &[ObjId] {
        self.points_to(obj)
    }
}

impl Solver<'_> {
    /// Loads the assignment blocks of every newly activated object
    /// (demand-driven loading). No-op when solving a fully loaded unit.
    fn drain_activations(&mut self) {
        let Some(db) = self.db else {
            self.g.act_queue.clear();
            return;
        };
        while let Some(n) = self.g.act_queue.pop() {
            let objs = std::mem::take(&mut self.g.node_objs[n as usize]);
            for o in &objs {
                if self.g.loaded[*o as usize] {
                    continue;
                }
                self.g.loaded[*o as usize] = true;
                self.g.blocks_loaded += 1;
                let block = db.block(ObjId(*o)).expect("valid database");
                for a in &block {
                    self.g.add_assign(a);
                }
                // The decoded block is dropped here: load-and-throw-away.
                self.obs_blocks_discarded.inc();
            }
        }
    }

    /// One pass of the iteration algorithm. Returns true when anything
    /// changed (edges added or new blocks loaded).
    fn pass(&mut self) -> bool {
        let edges_before = self.g.stats.edges_added;
        let loads_before = self.g.blocks_loaded;
        self.g.epoch += 1;
        self.drain_activations();

        let mut i = 0;
        while i < self.g.complex.len() {
            match self.g.complex[i] {
                Complex::Store { x, y } => {
                    let xr = self.g.find(x);
                    if self.g.active[xr as usize] {
                        let lv = self.g.get_lvals(xr);
                        for &z in lv.iter() {
                            self.g.add_edge(z, y);
                        }
                    }
                }
                Complex::Load { yderef, y } => {
                    let yr = self.g.find(y);
                    if self.g.active[yr as usize] {
                        let lv = self.g.get_lvals(yr);
                        for &z in lv.iter() {
                            self.g.add_edge(yderef, z);
                        }
                    }
                }
            }
            if !self.g.act_queue.is_empty() {
                self.drain_activations();
            }
            i += 1;
        }

        // Indirect calls: for every function lval g in pts(fp), link
        // g$i ⊇ fp$i and fp$ret ⊇ g$ret (paper §4).
        for i in 0..self.g.indirect.len() {
            let fp = self.g.find(self.g.indirect[i].fp);
            if !self.g.active[fp as usize] {
                continue;
            }
            let lv = self.g.get_lvals(fp);
            for &gfun in lv.iter() {
                let Some((gparams, gret)) = self.g.direct_sigs.get(&gfun) else {
                    continue;
                };
                let gparams = gparams.clone();
                let gret = *gret;
                let nparams = self.g.indirect[i].params.len().min(gparams.len());
                for (k, gp) in gparams.iter().enumerate().take(nparams) {
                    let fp_param = self.g.indirect[i].params[k];
                    self.g.add_edge(*gp, fp_param);
                }
                let fp_ret = self.g.indirect[i].ret;
                self.g.add_edge(fp_ret, gret);
            }
            if !self.g.act_queue.is_empty() {
                self.drain_activations();
            }
        }

        self.g.stats.edges_added != edges_before || self.g.blocks_loaded != loads_before
    }

    fn run(&mut self) {
        let obs = cla_obs::global();
        loop {
            self.g.stats.passes += 1;
            let before = self.g.stats;
            let loads_before = self.g.blocks_loaded;
            let mut sp = obs.span("solve", "solve.pass");
            sp.set("pass", self.g.stats.passes);
            let changed = self.pass();
            // Per-pass deltas make the cache-decay curve across passes
            // (Figure 5) directly visible in a trace.
            let st = self.g.stats;
            sp.set("getlvals_calls", st.getlvals_calls - before.getlvals_calls);
            sp.set("cache_hits", st.cache_hits - before.cache_hits);
            sp.set("unifications", st.unifications - before.unifications);
            sp.set("edges_added", st.edges_added - before.edges_added);
            sp.set("blocks_loaded", self.g.blocks_loaded - loads_before);
            drop(sp);
            obs.counter("cla_solve_passes_total").inc();
            obs.counter("cla_solve_getlvals_total")
                .add(st.getlvals_calls - before.getlvals_calls);
            obs.counter("cla_solve_cache_hits_total")
                .add(st.cache_hits - before.cache_hits);
            obs.counter("cla_solve_unifications_total")
                .add(st.unifications - before.unifications);
            obs.counter("cla_solve_edges_added_total")
                .add(st.edges_added - before.edges_added);
            if !changed {
                break;
            }
        }
    }
}

impl GraphState {
    fn new(n_objects: usize, demand: bool, opts: SolveOptions) -> Self {
        let n = n_objects;
        GraphState {
            opts,
            skip: (0..n as u32).collect(),
            out: vec![Vec::new(); n],
            base: vec![Vec::new(); n],
            edge_set: std::collections::HashSet::new(),
            active: vec![false; n],
            pending: vec![Vec::new(); n],
            node_objs: (0..n as u32).map(|i| vec![i]).collect(),
            loaded: vec![!demand; n],
            act_queue: Vec::new(),
            blocks_loaded: 0,
            complex: Vec::new(),
            deref_node: HashMap::new(),
            indirect: Vec::new(),
            direct_sigs: HashMap::new(),
            epoch: 0,
            cache_epoch: vec![0; n],
            cache: (0..n).map(|_| Arc::new(Vec::new())).collect(),
            empty: Arc::new(Vec::new()),
            interner: std::collections::HashSet::new(),
            interner_epoch: 0,
            call_id: 0,
            visit_call: vec![0; n],
            index: vec![0; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stats: SolveStats::default(),
        }
    }

    fn new_node(&mut self) -> u32 {
        let id = self.skip.len() as u32;
        self.skip.push(id);
        self.out.push(Vec::new());
        self.base.push(Vec::new());
        self.active.push(false);
        self.pending.push(Vec::new());
        self.node_objs.push(Vec::new());
        self.loaded.push(true);
        self.cache_epoch.push(0);
        self.cache.push(Arc::clone(&self.empty));
        self.visit_call.push(0);
        self.index.push(0);
        self.lowlink.push(0);
        self.on_stack.push(false);
        id
    }

    fn find(&mut self, mut n: u32) -> u32 {
        // Iterative find with path compression over the skip pointers.
        let mut root = n;
        while self.skip[root as usize] != root {
            root = self.skip[root as usize];
        }
        while self.skip[n as usize] != root {
            let next = self.skip[n as usize];
            self.skip[n as usize] = root;
            n = next;
        }
        root
    }

    /// Interns a sorted, deduplicated lval set: identical sets are shared
    /// (paper §5, enhancement three). The table is flushed per pass.
    fn intern_set(&mut self, set: Vec<u32>) -> Arc<Vec<u32>> {
        if set.is_empty() {
            return Arc::clone(&self.empty);
        }
        if self.interner_epoch != self.epoch {
            self.interner.clear();
            self.interner_epoch = self.epoch;
        }
        if let Some(existing) = self.interner.get(&set) {
            self.stats.sets_shared += 1;
            return Arc::clone(existing);
        }
        let rc = Arc::new(set);
        self.interner.insert(Arc::clone(&rc));
        rc
    }

    fn register_sigs(&mut self, sigs: &[FunSig]) {
        for s in sigs {
            if s.is_indirect {
                self.indirect.push(IndirectSig {
                    fp: s.obj.0,
                    params: s.params.iter().map(|p| p.0).collect(),
                    ret: s.ret.0,
                });
            } else {
                self.direct_sigs
                    .insert(s.obj.0, (s.params.iter().map(|p| p.0).collect(), s.ret.0));
            }
        }
    }

    /// Integrates one primitive assignment: simple forms become graph
    /// structure immediately (and can be discarded by the caller — the
    /// paper's discard strategy keeps only complex assignments in core).
    fn add_assign(&mut self, a: &PrimAssign) {
        match a.kind {
            AssignKind::Copy => {
                self.add_edge(a.dst.0, a.src.0);
            }
            AssignKind::Addr => {
                let d = self.find(a.dst.0);
                let v = a.src.0;
                let set = &mut self.base[d as usize];
                if let Err(pos) = set.binary_search(&v) {
                    set.insert(pos, v);
                }
                self.activate(d);
            }
            AssignKind::Store => {
                self.complex.push(Complex::Store {
                    x: a.dst.0,
                    y: a.src.0,
                });
            }
            AssignKind::Load => {
                let d = self.deref_of(a.src.0);
                self.add_edge(a.dst.0, d);
                self.complex.push(Complex::Load {
                    yderef: d,
                    y: a.src.0,
                });
            }
            AssignKind::StoreLoad => {
                // *x = *y splits into t = *y; *x = t over a fresh node.
                let t = self.new_node();
                let d = self.deref_of(a.src.0);
                self.add_edge(t, d);
                self.complex.push(Complex::Load {
                    yderef: d,
                    y: a.src.0,
                });
                self.complex.push(Complex::Store { x: a.dst.0, y: t });
            }
        }
    }

    /// The shared `n_*y` node for loads from `y` (paper: one deref node per
    /// variable, created on demand).
    fn deref_of(&mut self, y_obj: u32) -> u32 {
        if let Some(&d) = self.deref_node.get(&y_obj) {
            return d;
        }
        let d = self.new_node();
        self.deref_node.insert(y_obj, d);
        d
    }

    /// Adds edge `u → v` (meaning `pts(u) ⊇ pts(v)`); returns true when new.
    fn add_edge(&mut self, u: u32, v: u32) -> bool {
        let u = self.find(u);
        let v = self.find(v);
        if u == v {
            return false;
        }
        let key = (u64::from(u) << 32) | u64::from(v);
        if !self.edge_set.insert(key) {
            return false;
        }
        self.out[u as usize].push(v);
        self.stats.edges_added += 1;
        if self.active[v as usize] {
            self.activate(u);
        } else {
            self.pending[v as usize].push(u);
        }
        true
    }

    /// Marks a node (and everything waiting on it) as having a potentially
    /// non-empty points-to set, queueing block loads.
    fn activate(&mut self, n: u32) {
        let n = self.find(n);
        if self.active[n as usize] {
            return;
        }
        let mut stack = vec![n];
        while let Some(m) = stack.pop() {
            if self.active[m as usize] {
                continue;
            }
            self.active[m as usize] = true;
            self.act_queue.push(m);
            for w in std::mem::take(&mut self.pending[m as usize]) {
                let w = self.find(w);
                if !self.active[w as usize] {
                    stack.push(w);
                }
            }
        }
    }

    // ----- reachability -----------------------------------------------------

    /// The points-to set of node `start` (object ids, sorted), computed by
    /// graph reachability with cycle elimination and per-pass caching.
    fn get_lvals(&mut self, start: u32) -> Arc<Vec<u32>> {
        self.stats.getlvals_calls += 1;
        if !self.opts.cache {
            // No cross-query caching: results live only within one call.
            self.epoch += 1;
        }
        let start = self.find(start);
        if self.cache_epoch[start as usize] == self.epoch {
            self.stats.cache_hits += 1;
            return Arc::clone(&self.cache[start as usize]);
        }
        if self.opts.cycle_elim {
            self.tarjan_lvals(start)
        } else {
            self.plain_dfs_lvals(start)
        }
    }

    /// Iterative Tarjan SCC traversal: computes lvals bottom-up in reverse
    /// topological order, unifying every SCC it pops, and caching the result
    /// for every node it completes.
    fn tarjan_lvals(&mut self, start: u32) -> Arc<Vec<u32>> {
        self.call_id += 1;
        let cid = self.call_id;
        let mut next_index: u32 = 0;
        let mut scc_stack: Vec<u32> = Vec::new();
        // Frame: (node, next-edge cursor, accumulated lvals).
        let mut frames: Vec<(u32, usize, Vec<u32>)> = Vec::new();

        let push_frame = |s: &mut Self,
                          frames: &mut Vec<(u32, usize, Vec<u32>)>,
                          scc_stack: &mut Vec<u32>,
                          next_index: &mut u32,
                          n: u32| {
            s.visit_call[n as usize] = cid;
            s.index[n as usize] = *next_index;
            s.lowlink[n as usize] = *next_index;
            *next_index += 1;
            s.on_stack[n as usize] = true;
            scc_stack.push(n);
            s.stats.dfs_visits += 1;
            let acc = s.base[n as usize].clone();
            frames.push((n, 0, acc));
        };

        push_frame(self, &mut frames, &mut scc_stack, &mut next_index, start);

        loop {
            let Some(fi) = frames.len().checked_sub(1) else {
                unreachable!("loop returns at the root frame")
            };
            let n = frames[fi].0;
            let cursor = frames[fi].1;
            if cursor < self.out[n as usize].len() {
                // Scan the next edge of n.
                frames[fi].1 += 1;
                let raw = self.out[n as usize][cursor];
                let s = self.find(raw);
                if s == n {
                    continue;
                }
                if self.cache_epoch[s as usize] == self.epoch {
                    // Finished earlier this pass (or this call): merge.
                    let cached = Arc::clone(&self.cache[s as usize]);
                    frames[fi].2.extend_from_slice(&cached);
                    continue;
                }
                if self.visit_call[s as usize] == cid {
                    if self.on_stack[s as usize] {
                        // Back edge: potential cycle.
                        let low = self.index[s as usize];
                        if low < self.lowlink[n as usize] {
                            self.lowlink[n as usize] = low;
                        }
                    }
                    // Cross edge to a completed-but-uncached node cannot
                    // happen: completion always caches.
                    continue;
                }
                push_frame(self, &mut frames, &mut scc_stack, &mut next_index, s);
                continue;
            }

            // Frame complete.
            let (n, _, mut acc) = frames.pop().unwrap();
            acc.sort_unstable();
            acc.dedup();
            if self.lowlink[n as usize] == self.index[n as usize] {
                // n roots an SCC: pop members and unify them into n.
                let mut members = Vec::new();
                loop {
                    let m = scc_stack.pop().expect("scc stack underflow");
                    self.on_stack[m as usize] = false;
                    if m == n {
                        break;
                    }
                    members.push(m);
                }
                for m in members {
                    self.unify_into(m, n);
                }
                let final_set = self.intern_set(acc);
                let repr = self.find(n);
                self.cache_epoch[repr as usize] = self.epoch;
                self.cache[repr as usize] = Arc::clone(&final_set);
                if let Some(parent) = frames.last_mut() {
                    parent.2.extend_from_slice(&final_set);
                    let low = self.lowlink[n as usize];
                    let pn = parent.0;
                    if low < self.lowlink[pn as usize] {
                        self.lowlink[pn as usize] = low;
                    }
                } else {
                    return final_set;
                }
            } else {
                // Not a root: propagate lowlink and accumulated lvals to the
                // parent; the SCC root will finalize and cache.
                let parent = frames.last_mut().expect("non-root node must have a parent");
                parent.2.extend(acc);
                let low = self.lowlink[n as usize];
                let pn = parent.0;
                if low < self.lowlink[pn as usize] {
                    self.lowlink[pn as usize] = low;
                }
            }
        }
    }

    /// Reachability without cycle elimination — the paper's *naive*
    /// formulation (Figure 5's `getLvals` with `onPath` but no
    /// `unifyNode`): the only cycle check is "skip nodes on the current
    /// path", so a node is re-explored once per distinct path reaching it.
    /// This is combinatorial on join-heavy graphs, which is precisely the
    /// behaviour the §5 ablation measures (>50,000x on gimp). Only the
    /// queried root may be cached: inner nodes of cycles see
    /// under-approximated sets.
    fn plain_dfs_lvals(&mut self, start: u32) -> Arc<Vec<u32>> {
        let mut acc: Vec<u32> = Vec::new();
        // Frames: (node, next edge index). `on_stack` is the onPath bit.
        let mut frames: Vec<(u32, usize)> = Vec::new();
        self.on_stack[start as usize] = true;
        self.stats.dfs_visits += 1;
        acc.extend_from_slice(&self.base[start as usize]);
        frames.push((start, 0));
        while let Some(fi) = frames.len().checked_sub(1) {
            let (n, cursor) = frames[fi];
            if cursor >= self.out[n as usize].len() {
                self.on_stack[n as usize] = false;
                frames.pop();
                continue;
            }
            frames[fi].1 += 1;
            let s = self.find(self.out[n as usize][cursor]);
            if self.on_stack[s as usize] {
                continue; // on the current path: cycle, return empty set
            }
            if self.cache_epoch[s as usize] == self.epoch {
                let cached = Arc::clone(&self.cache[s as usize]);
                acc.extend_from_slice(&cached);
                continue;
            }
            self.on_stack[s as usize] = true;
            self.stats.dfs_visits += 1;
            acc.extend_from_slice(&self.base[s as usize]);
            frames.push((s, 0));
        }
        acc.sort_unstable();
        acc.dedup();
        let set = self.intern_set(acc);
        self.cache_epoch[start as usize] = self.epoch;
        self.cache[start as usize] = Arc::clone(&set);
        set
    }

    /// Merges node `u` into representative `v` (the paper's `unifyNode`):
    /// `u`'s skip pointer is set to `v` and edge/base/activation state is
    /// merged.
    fn unify_into(&mut self, u: u32, v: u32) {
        debug_assert_ne!(u, v);
        self.stats.unifications += 1;
        self.skip[u as usize] = v;
        let edges = std::mem::take(&mut self.out[u as usize]);
        self.out[v as usize].extend(edges);
        let ubase = std::mem::take(&mut self.base[u as usize]);
        let vbase = &mut self.base[v as usize];
        for b in ubase {
            if let Err(pos) = vbase.binary_search(&b) {
                vbase.insert(pos, b);
            }
        }
        // Merge caches so this pass never under-approximates after a merge.
        if self.cache_epoch[u as usize] == self.epoch {
            if self.cache_epoch[v as usize] == self.epoch {
                let mut merged: Vec<u32> = (*self.cache[v as usize]).clone();
                merged.extend_from_slice(&self.cache[u as usize]);
                merged.sort_unstable();
                merged.dedup();
                self.cache[v as usize] = self.intern_set(merged);
            } else {
                self.cache[v as usize] = Arc::clone(&self.cache[u as usize]);
                self.cache_epoch[v as usize] = self.epoch;
            }
        }
        // Activation and demand state.
        let upend = std::mem::take(&mut self.pending[u as usize]);
        let uobjs = std::mem::take(&mut self.node_objs[u as usize]);
        self.node_objs[v as usize].extend(uobjs);
        if self.active[u as usize] && !self.active[v as usize] {
            self.active[u as usize] = false;
            // Re-run activation on the representative so pending waiters and
            // block loads fire.
            self.pending[v as usize].extend(upend);
            self.activate(v);
        } else if self.active[v as usize] {
            // v already active: u's waiters activate, u's objects load.
            for w in upend {
                self.activate(w);
            }
            if self.active[u as usize] {
                self.active[u as usize] = false;
            } else {
                self.act_queue.push(v);
            }
        } else {
            self.pending[v as usize].extend(upend);
        }
    }

    fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let nodes = self.skip.len();
        let edge_bytes: usize = self
            .out
            .iter()
            .map(|v| v.capacity() * size_of::<u32>())
            .sum();
        let base_bytes: usize = self
            .base
            .iter()
            .map(|v| v.capacity() * size_of::<u32>())
            .sum();
        let pending_bytes: usize = self
            .pending
            .iter()
            .map(|v| v.capacity() * size_of::<u32>())
            .sum();
        // Shared sets are counted once through the interner; per-node cache
        // entries are Arc references.
        let cache_bytes: usize = self
            .interner
            .iter()
            .map(|c| c.capacity() * size_of::<u32>())
            .sum::<usize>()
            + self.cache.len() * size_of::<Arc<Vec<u32>>>();
        nodes * (size_of::<u32>() * 5 + size_of::<bool>() * 2)
            + edge_bytes
            + base_bytes
            + pending_bytes
            + cache_bytes
            + self.edge_set.capacity() * size_of::<u64>()
            + self.complex.len() * size_of::<Complex>()
    }
}

/// Number of blocks loaded and related demand statistics for a database
/// solve: read them from [`Database::load_stats`] after calling
/// [`solve_database`].
#[cfg(test)]
mod tests {
    use super::*;
    use crate::deductive::solve_oracle;
    use cla_ir::{compile_source, LowerOptions};

    fn unit_of(src: &str) -> CompiledUnit {
        compile_source(src, "t.c", &LowerOptions::default()).unwrap()
    }

    fn check_matches_oracle(src: &str) {
        let unit = unit_of(src);
        let oracle = solve_oracle(&unit);
        let (got, _) = solve_unit(&unit, SolveOptions::default());
        for (obj, set) in oracle.iter() {
            assert_eq!(
                got.points_to(obj),
                set,
                "mismatch for {} in {src}",
                unit.object(obj).name
            );
        }
        for (obj, set) in got.iter() {
            assert_eq!(
                oracle.points_to(obj),
                set,
                "extra results for {} in {src}",
                unit.object(obj).name
            );
        }
    }

    #[test]
    fn figure3() {
        check_matches_oracle("int x, *y; int **z; void f(void) { z = &y; *z = &x; }");
    }

    #[test]
    fn chains_and_cycles() {
        check_matches_oracle(
            "int v, w, *a, *b, *c;
             void f(void) { a = b; b = c; c = a; a = &v; c = &w; }",
        );
    }

    #[test]
    fn loads_and_stores() {
        check_matches_oracle(
            "int x, y, *p, *q, **pp;
             void f(void) { p = &x; q = &y; pp = &p; *pp = q; p = *pp; }",
        );
    }

    #[test]
    fn store_load() {
        check_matches_oracle(
            "int a, *pa, *pb, **x, **y;
             void f(void) { pa = &a; x = &pa; y = &pb; *y = *x; }",
        );
    }

    #[test]
    fn long_copy_chain() {
        check_matches_oracle(
            "int v; int *a, *b, *c, *d, *e;
             void f(void) { e = &v; d = e; c = d; b = c; a = b; }",
        );
    }

    #[test]
    fn indirect_calls() {
        check_matches_oracle(
            "int x;
             int *id(int *a) { return a; }
             int *(*fp)(int *);
             int *r;
             void main_(void) { fp = id; r = fp(&x); }",
        );
    }

    #[test]
    fn multiple_targets_through_pointer() {
        check_matches_oracle(
            "int a, b, c, *p, **pp;
             void f(void) { p = &a; pp = &p; *pp = &b; *pp = &c; }",
        );
    }

    #[test]
    fn ablation_configs_agree() {
        let src = "int v, w, *a, *b, *c, **pp;
                   void f(void) { a = b; b = c; c = a; a = &v; pp = &a; *pp = &w; b = *pp; }";
        let unit = unit_of(src);
        let reference = solve_oracle(&unit);
        for (cache, cycle) in [(true, true), (true, false), (false, true), (false, false)] {
            let (got, _) = solve_unit(
                &unit,
                SolveOptions {
                    cache,
                    cycle_elim: cycle,
                },
            );
            for (obj, set) in reference.iter() {
                assert_eq!(
                    got.points_to(obj),
                    set,
                    "cache={cache} cycle={cycle} object {}",
                    unit.object(obj).name
                );
            }
        }
    }

    #[test]
    fn database_mode_matches_unit_mode() {
        let src = "int x, y;
                   int *p, *q, **pp;
                   int *getp(void) { return &x; }
                   void f(void) { p = getp(); pp = &p; *pp = &y; q = *pp; }";
        let unit = unit_of(src);
        let db = Database::open(cla_cladb::write_object(&unit)).unwrap();
        let (from_unit, _) = solve_unit(&unit, SolveOptions::default());
        let (from_db, _) = solve_database(&db, SolveOptions::default());
        assert_eq!(from_unit, from_db);
        // Demand loading must not have read every assignment eagerly
        // unless everything was relevant.
        let ls = db.load_stats();
        assert!(ls.assigns_loaded <= 2 * ls.assigns_in_file);
    }

    #[test]
    fn demand_loading_skips_irrelevant_blocks() {
        // A large clump of integer-only code whose blocks must never load.
        let mut src = String::from("int x, *p; void f(void) { p = &x; }\n");
        src.push_str("int i0, i1, i2, i3, i4, i5;\n");
        src.push_str("void g(void) { i0 = i1; i1 = i2; i2 = i3; i3 = i4; i4 = i5; }\n");
        let unit = unit_of(&src);
        let db = Database::open(cla_cladb::write_object(&unit)).unwrap();
        let (pts, _) = solve_database(&db, SolveOptions::default());
        let p = unit.find_object("p").unwrap();
        let x = unit.find_object("x").unwrap();
        assert!(pts.may_point_to(p, x));
        // Only p's own block should have been touched; the i* chain is
        // irrelevant to pointers.
        let ls = db.load_stats();
        assert!(
            ls.assigns_loaded < 3,
            "loaded {} assigns",
            ls.assigns_loaded
        );
    }

    #[test]
    fn stats_reported() {
        let unit = unit_of(
            "int v, *a, *b, *c;
             void f(void) { a = b; b = c; c = a; a = &v; }",
        );
        let (_, stats) = solve_unit(&unit, SolveOptions::default());
        assert!(stats.passes >= 1);
        assert!(stats.getlvals_calls <= 1000);
        assert!(stats.nodes >= unit.objects.len());
        assert!(stats.approx_bytes > 0);
        // The a/b/c cycle must have been collapsed.
        assert!(stats.unifications >= 2);
    }

    #[test]
    fn empty_program() {
        let unit = unit_of("int x;");
        let (pts, stats) = solve_unit(&unit, SolveOptions::default());
        assert_eq!(pts.relations(), 0);
        assert_eq!(stats.edges_added, 0);
    }

    #[test]
    fn warm_queries_match_batch_and_hit_cache() {
        let src = "int x, y, z;
                   int *p, *q, *r, **pp;
                   void f(void) { p = &x; q = &y; pp = &p; *pp = &z; r = *pp; }";
        let unit = unit_of(src);
        let db = Database::open(cla_cladb::write_object(&unit)).unwrap();
        let (batch, _) = solve_database(&db, SolveOptions::default());
        let mut warm = Warm::from_database(&db, SolveOptions::default());
        drop(db); // the warm graph owns no database borrow

        let hits_before = warm.stats().cache_hits;
        for o in 0..unit.objects.len() as u32 {
            assert_eq!(
                warm.points_to(ObjId(o)),
                batch.points_to(ObjId(o)),
                "object {} diverged",
                unit.objects[o as usize].name
            );
        }
        // Query every variable again: at fixpoint these are all cache hits.
        for o in 0..unit.objects.len() as u32 {
            let _ = warm.points_to(ObjId(o));
        }
        let hits_after = warm.stats().cache_hits;
        assert!(
            hits_after > hits_before,
            "repeat queries missed the warm cache ({hits_before} -> {hits_after})"
        );
    }

    #[test]
    fn warm_alias_and_full_extraction() {
        let src = "int x, y; int *p, *q, *r;
                   void f(void) { p = &x; q = &x; r = &y; }";
        let unit = unit_of(src);
        let mut warm = Warm::from_unit(&unit, SolveOptions::default());
        let p = unit.find_object("p").unwrap();
        let q = unit.find_object("q").unwrap();
        let r = unit.find_object("r").unwrap();
        assert!(warm.may_alias(p, q));
        assert!(!warm.may_alias(p, r));
        assert!(warm.may_alias(p, p));
        let full = warm.extract_points_to(&unit.objects);
        let (batch, _) = solve_unit(&unit, SolveOptions::default());
        assert_eq!(full, batch);
    }

    #[test]
    fn warm_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Warm>();
    }

    #[test]
    fn sealed_is_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<SealedGraph>();
    }

    #[test]
    fn sealed_matches_batch_everywhere() {
        let src = "int x, y, z;
                   int *p, *q, *r, **pp;
                   void f(void) { p = &x; q = &y; pp = &p; *pp = &z; r = *pp; }";
        let unit = unit_of(src);
        let db = Database::open(cla_cladb::write_object(&unit)).unwrap();
        let (batch, _) = solve_database(&db, SolveOptions::default());
        let sealed = Warm::from_database(&db, SolveOptions::default()).seal();
        drop(db);
        for o in 0..unit.objects.len() as u32 {
            assert_eq!(
                sealed.points_to(ObjId(o)),
                batch.points_to(ObjId(o)),
                "object {} diverged",
                unit.objects[o as usize].name
            );
        }
        // Out-of-range ids answer empty instead of panicking.
        assert!(sealed.points_to(ObjId(u32::MAX)).is_empty());
        assert_eq!(sealed.extract_points_to(&unit.objects), batch);
        assert_eq!(sealed.object_count(), unit.objects.len());
        assert!(sealed.approx_bytes() > 0);
        assert!(sealed.stats().getlvals_calls > 0);
    }

    #[test]
    fn sealed_alias_agrees_with_warm() {
        let src = "int x, y; int *p, *q, *r;
                   void f(void) { p = &x; q = &x; r = &y; }";
        let unit = unit_of(src);
        let mut warm = Warm::from_unit(&unit, SolveOptions::default());
        let p = unit.find_object("p").unwrap();
        let q = unit.find_object("q").unwrap();
        let r = unit.find_object("r").unwrap();
        let x = unit.find_object("x").unwrap();
        let expected = [
            (p, q, warm.may_alias(p, q)),
            (p, r, warm.may_alias(p, r)),
            (p, p, warm.may_alias(p, p)),
            (x, x, warm.may_alias(x, x)),
        ];
        let sealed = warm.seal();
        for (a, b, want) in expected {
            assert_eq!(sealed.may_alias(a, b), want, "alias({a:?},{b:?})");
        }
        assert!(sealed.may_alias(p, q));
        assert!(!sealed.may_alias(p, r));
    }

    #[test]
    fn sealed_scc_members_share_sets() {
        // a/b/c form a copy cycle: after collapse, their sealed sets must be
        // the same allocation, and cross-thread reads need no locks.
        let src = "int v, w, *a, *b, *c;
                   void f(void) { a = b; b = c; c = a; a = &v; c = &w; }";
        let unit = unit_of(src);
        let sealed = std::sync::Arc::new(Warm::from_unit(&unit, SolveOptions::default()).seal());
        let a = unit.find_object("a").unwrap();
        let b = unit.find_object("b").unwrap();
        assert!(std::ptr::eq(sealed.points_to(a), sealed.points_to(b)));
        let (oracle, _) = solve_unit(&unit, SolveOptions::default());
        let n_objects = unit.objects.len() as u32;
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let sealed = std::sync::Arc::clone(&sealed);
                let oracle = &oracle;
                scope.spawn(move || {
                    for _ in 0..100 {
                        for o in 0..n_objects {
                            assert_eq!(sealed.points_to(ObjId(o)), oracle.points_to(ObjId(o)));
                        }
                        assert!(sealed.may_alias(a, b));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod review_probe {
    use super::*;
    use cla_cladb::Database;

    #[test]
    fn sealed_matches_batch_with_cache_disabled() {
        // Many distinct pointers with distinct sets, to maximize allocator
        // address reuse between recomputed lval sets.
        let mut src = String::from("int a0");
        for i in 1..40 {
            src.push_str(&format!(", a{i}"));
        }
        src.push(';');
        for i in 0..40 {
            src.push_str(&format!(" int *p{i};"));
        }
        src.push_str(" void f(void) {");
        for i in 0..40 {
            src.push_str(&format!(" p{i} = &a{i};"));
            if i > 0 {
                src.push_str(&format!(" p{i} = &a{};", i - 1));
            }
        }
        src.push('}');
        let unit = crate::pretransitive::tests_helper_unit(&src);
        let opts = SolveOptions {
            cache: false,
            cycle_elim: true,
        };
        let db = Database::open(cla_cladb::write_object(&unit)).unwrap();
        let (batch, _) = solve_database(&db, opts);
        let sealed = Warm::from_database(&db, opts).seal();
        for o in 0..unit.objects.len() as u32 {
            assert_eq!(
                sealed.points_to(ObjId(o)),
                batch.points_to(ObjId(o)),
                "object {} diverged",
                unit.objects[o as usize].name
            );
        }
    }
}

#[cfg(test)]
pub(crate) fn tests_helper_unit(src: &str) -> cla_ir::CompiledUnit {
    cla_ir::compile_source(src, "t.c", &cla_ir::LowerOptions::default()).expect("parse")
}
