//! Baseline: classic transitively-closed worklist solver for Andersen's
//! analysis with difference propagation.
//!
//! This is the style of algorithm the paper compares against (Fähndrich et
//! al., Su et al., Rountev & Chandra): points-to sets are materialized at
//! every node and propagated along inclusion edges, so the constraint graph
//! is effectively kept transitively closed with respect to the sets. No
//! cycle elimination is performed (the optimized variants in the literature
//! add partial online cycle detection; the paper's point is that the
//! pre-transitive solver gets complete cycle detection for free).

use crate::solution::PointsTo;
use cla_ir::{AssignKind, CompiledUnit, ObjId};
use std::collections::{HashSet, VecDeque};

/// Per-run counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct WorklistStats {
    /// Lvals inserted into points-to sets (propagation work).
    pub insertions: u64,
    /// Inclusion edges materialized.
    pub edges: u64,
    /// Worklist pops.
    pub pops: u64,
    /// Rough live-memory estimate in bytes.
    pub approx_bytes: usize,
}

struct State {
    pts: Vec<HashSet<u32>>,
    delta: Vec<Vec<u32>>,
    succ: Vec<Vec<u32>>,
    edge_set: HashSet<u64>,
    queued: Vec<bool>,
    queue: VecDeque<u32>,
    stats: WorklistStats,
}

impl State {
    fn new(n: usize) -> State {
        State {
            pts: vec![HashSet::new(); n],
            delta: vec![Vec::new(); n],
            succ: vec![Vec::new(); n],
            edge_set: HashSet::new(),
            queued: vec![false; n],
            queue: VecDeque::new(),
            stats: WorklistStats::default(),
        }
    }

    fn add_node(&mut self) -> u32 {
        let id = self.pts.len() as u32;
        self.pts.push(HashSet::new());
        self.delta.push(Vec::new());
        self.succ.push(Vec::new());
        self.queued.push(false);
        id
    }

    fn add_lval(&mut self, n: u32, v: u32) {
        if self.pts[n as usize].insert(v) {
            self.stats.insertions += 1;
            self.delta[n as usize].push(v);
            if !self.queued[n as usize] {
                self.queued[n as usize] = true;
                self.queue.push_back(n);
            }
        }
    }

    /// Adds inclusion edge `u ⊆ v` (pts flows from u to v) and propagates
    /// u's current set.
    fn add_edge(&mut self, u: u32, v: u32) {
        if u == v {
            return;
        }
        let key = (u64::from(u) << 32) | u64::from(v);
        if !self.edge_set.insert(key) {
            return;
        }
        self.stats.edges += 1;
        self.succ[u as usize].push(v);
        let current: Vec<u32> = self.pts[u as usize].iter().copied().collect();
        for o in current {
            self.add_lval(v, o);
        }
    }
}

/// Runs the worklist solver over a fully loaded unit.
pub fn solve(unit: &CompiledUnit) -> PointsTo {
    solve_with_stats(unit).0
}

/// Runs the worklist solver, also returning counters.
pub fn solve_with_stats(unit: &CompiledUnit) -> (PointsTo, WorklistStats) {
    let n = unit.objects.len();
    let mut st = State::new(n);

    // Complex constraints indexed by the pointer node that triggers them.
    let mut loads: Vec<Vec<u32>> = vec![Vec::new(); n]; // y -> dsts of x = *y
    let mut stores: Vec<Vec<u32>> = vec![Vec::new(); n]; // x -> srcs of *x = y
    for a in &unit.assigns {
        let (x, y) = (a.dst.0, a.src.0);
        match a.kind {
            AssignKind::Copy => st.add_edge(y, x),
            AssignKind::Addr => st.add_lval(x, y),
            AssignKind::Load => loads[y as usize].push(x),
            AssignKind::Store => stores[x as usize].push(y),
            AssignKind::StoreLoad => {
                // Split via a fresh temporary node.
                let t = st.add_node();
                loads.push(Vec::new());
                stores.push(Vec::new());
                loads[y as usize].push(t);
                stores[x as usize].push(t);
            }
        }
    }

    // Indirect call sites, keyed by function-pointer node.
    let mut indirect: Vec<Vec<(Vec<u32>, u32)>> = vec![Vec::new(); st.pts.len()];
    let mut direct: std::collections::HashMap<u32, (Vec<u32>, u32)> =
        std::collections::HashMap::new();
    for s in &unit.funsigs {
        let params: Vec<u32> = s.params.iter().map(|p| p.0).collect();
        if s.is_indirect {
            indirect[s.obj.index()].push((params, s.ret.0));
        } else {
            direct.insert(s.obj.0, (params, s.ret.0));
        }
    }

    while let Some(p) = st.queue.pop_front() {
        st.queued[p as usize] = false;
        st.stats.pops += 1;
        let dl = std::mem::take(&mut st.delta[p as usize]);
        for &o in &dl {
            // x = *p : edge o -> x for every new pointee o.
            // (Index-based: `st` is mutably borrowed inside the loop.)
            #[allow(clippy::needless_range_loop)]
            for i in 0..loads[p as usize].len() {
                let x = loads[p as usize][i];
                st.add_edge(o, x);
            }
            // *p = y : edge y -> o.
            #[allow(clippy::needless_range_loop)]
            for i in 0..stores[p as usize].len() {
                let y = stores[p as usize][i];
                st.add_edge(y, o);
            }
            // Indirect calls through p: link parameter/return variables of
            // the function o.
            if (p as usize) < indirect.len() && !indirect[p as usize].is_empty() {
                if let Some((gparams, gret)) = direct.get(&o).cloned() {
                    for (fparams, fret) in indirect[p as usize].clone() {
                        for (k, fp) in fparams.iter().enumerate() {
                            if let Some(g) = gparams.get(k) {
                                // g$k = fp$k : flow fp -> g.
                                st.add_edge(*fp, *g);
                            }
                        }
                        // fp$ret = g$ret : flow g -> fp.
                        st.add_edge(gret, fret);
                    }
                }
            }
        }
        // Plain propagation along existing inclusion edges.
        for i in 0..st.succ[p as usize].len() {
            let v = st.succ[p as usize][i];
            for &o in &dl {
                st.add_lval(v, o);
            }
        }
    }

    st.stats.approx_bytes = approx_bytes(&st);
    let pts: Vec<Vec<ObjId>> = st.pts[..n]
        .iter()
        .map(|s| s.iter().map(|&v| ObjId(v)).collect())
        .collect();
    (PointsTo::new(pts, &unit.objects), st.stats)
}

fn approx_bytes(st: &State) -> usize {
    use std::mem::size_of;
    let set_bytes: usize = st
        .pts
        .iter()
        .map(|s| s.capacity() * size_of::<u32>() * 2)
        .sum();
    let succ_bytes: usize = st
        .succ
        .iter()
        .map(|s| s.capacity() * size_of::<u32>())
        .sum();
    set_bytes + succ_bytes + st.edge_set.capacity() * size_of::<u64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cla_ir::{compile_source, LowerOptions};

    fn unit_of(src: &str) -> CompiledUnit {
        compile_source(src, "t.c", &LowerOptions::default()).unwrap()
    }

    #[test]
    fn figure3() {
        let unit = unit_of("int x, *y; int **z; void f(void) { z = &y; *z = &x; }");
        let p = solve(&unit);
        let y = unit.find_object("y").unwrap();
        let x = unit.find_object("x").unwrap();
        assert!(p.may_point_to(y, x));
    }

    #[test]
    fn stats_populated() {
        let unit = unit_of("int x, *p, *q; void f(void) { p = &x; q = p; }");
        let (p, stats) = solve_with_stats(&unit);
        assert!(stats.insertions >= 2);
        assert!(stats.edges >= 1);
        assert!(stats.pops >= 1);
        assert!(p.relations() >= 2);
    }

    #[test]
    fn indirect_call() {
        let unit = unit_of(
            "int x; int *id(int *a) { return a; } int *(*fp)(int *); int *r;
             void main_(void) { fp = id; r = fp(&x); }",
        );
        let p = solve(&unit);
        let r = unit.find_object("r").unwrap();
        let x = unit.find_object("x").unwrap();
        assert!(p.may_point_to(r, x));
    }
}
