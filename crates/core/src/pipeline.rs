//! The end-to-end compile-link-analyze pipeline.
//!
//! Drives the three CLA phases over a set of source files: parallel
//! per-file compilation (the architecture explicitly supports separate
//! and/or parallel compilation — paper §1), linking into one program
//! database, and demand-driven points-to analysis. Produces the timing and
//! space measurements the paper's Tables 2 and 3 report.

use crate::pretransitive::{solve_database, SealedGraph, SolveOptions, SolveStats, Warm};
use crate::solution::PointsTo;
use cla_cfront::{CError, FileProvider, PpOptions, Preprocessed};
use cla_cladb::{fnv64, write_object, Database, DbError, LinkStats, LoadStats, StreamLinker};
use cla_ir::{compile_file, AssignCounts, CompileStats, CompiledUnit, LowerOptions};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::Duration;

/// An error from any phase of the pipeline.
///
/// Compile errors come from the frontend; database errors come from opening
/// the linked object file. The latter were previously treated as impossible
/// (`expect`), but a pipeline whose output goes through a filesystem — or a
/// caller that routes pre-built object bytes here — must surface corruption
/// as a value, not a panic (DESIGN.md §10).
#[derive(Debug)]
pub enum PipelineError {
    /// A frontend (preprocess/parse/lower) error.
    Frontend(CError),
    /// The linked database failed to open or verify.
    Db(DbError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Frontend(e) => write!(f, "{e}"),
            PipelineError::Db(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CError> for PipelineError {
    fn from(e: CError) -> Self {
        PipelineError::Frontend(e)
    }
}

impl From<DbError> for PipelineError {
    fn from(e: DbError) -> Self {
        PipelineError::Db(e)
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    pub pp: PpOptions,
    pub lower: LowerOptions,
    pub solver: SolveOptions,
    /// Compile source files on a thread pool.
    pub parallel_compile: bool,
    /// Cap on the compile thread pool: at most this many worker threads
    /// (0 = one thread per CPU). Only consulted with `parallel_compile`.
    pub jobs: usize,
    /// Fail fast: the first frontend error (or compile panic, surfaced as a
    /// typed error) aborts the run. When false, failing units are
    /// quarantined into [`Report::quarantined`] and the analysis continues
    /// over every unit that survived (DESIGN.md §14). The library default
    /// stays fail-fast; `cla-tool analyze` runs quarantine-and-continue
    /// unless `--strict` is passed.
    pub strict: bool,
    /// With quarantined units present, give every referenced-but-undefined
    /// global symbol a conservative PIP-style unknown summary at link time
    /// (see `add_unknown_summaries`): sound-leaning answers instead of
    /// silently missing flows. Off by default — answers stay minimal.
    pub unknown_summaries: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            pp: PpOptions::default(),
            lower: LowerOptions::default(),
            solver: SolveOptions::default(),
            parallel_compile: false,
            jobs: 0,
            strict: true,
            unknown_summaries: false,
        }
    }
}

/// Why a unit landed in the quarantine ledger.
#[derive(Debug, Clone)]
pub enum QuarantineReason {
    /// A typed frontend error, including [`CError::Budget`] overruns.
    Error(CError),
    /// The compile panicked; the payload carries the panic message. The
    /// pool catches the panic, so one poisoned unit never kills a worker
    /// (or strands the backpressure condvar).
    Panic(String),
}

impl QuarantineReason {
    /// True when the unit exceeded a [`cla_cfront::FrontendLimits`] budget.
    pub fn is_budget(&self) -> bool {
        matches!(self, QuarantineReason::Error(e) if e.is_budget())
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::Error(e) => write!(f, "{e}"),
            QuarantineReason::Panic(msg) => write!(f, "compile panicked: {msg}"),
        }
    }
}

/// One entry of the per-file quarantine ledger.
#[derive(Debug, Clone)]
pub struct Quarantined {
    /// The input file as given to [`analyze`].
    pub file: String,
    pub reason: QuarantineReason,
}

/// Resolves a `jobs` cap (0 = auto) to a concrete thread count.
#[must_use]
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    }
}

/// A persistent compile cache: preprocessed-source key → serialized object
/// file. [`analyze_with`] consults it before compiling each file and feeds
/// it after each miss, so compiles skip across process restarts (the on-disk
/// implementation lives in `cla-snap`). Implementations must tolerate
/// concurrent use — the pipeline calls them from its compile thread pool.
pub trait CompileCache: Send + Sync {
    /// The object bytes previously stored under `key`, if any. Returning
    /// damaged bytes is safe: the pipeline re-opens them through the
    /// checksummed reader and falls back to a fresh compile on any error.
    fn load(&self, key: u64) -> Option<Vec<u8>>;
    /// Persists object bytes under `key` (best effort; errors are the
    /// implementation's to swallow — a failed store only costs a future
    /// recompile).
    fn store(&self, key: u64, bytes: &[u8]);
}

/// Identity of one analysis run: what was analyzed and with which options.
///
/// A snapshot saved under one provenance may only be loaded under an equal
/// provenance — any edited input (headers included: input hashes cover the
/// whole preprocessed closure), changed preprocessor/lowering option, or
/// changed solver option forces a full re-solve instead of stale answers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Provenance {
    /// Per input file, in command order: (file name, hash of the file's
    /// preprocessed closure — every source read while preprocessing it,
    /// see [`closure_hash`]).
    pub inputs: Vec<(String, u64)>,
    /// Fingerprint of the non-solver options
    /// (see [`options_fingerprint`]).
    pub options_fp: u64,
    /// Solver options the graph was (or will be) solved with.
    pub solver: SolveOptions,
}

/// Short-circuits the solve phase of [`analyze_with`] with a persisted
/// result (the on-disk snapshot store lives in `cla-snap`).
pub trait SnapshotHook: Send + Sync {
    /// A sealed graph previously saved under exactly this provenance, or
    /// `None` (missing, corrupt, or provenance mismatch — the caller
    /// re-solves in every case).
    fn load(&self, prov: &Provenance) -> Option<SealedGraph>;
    /// Persists a freshly solved graph under `prov` (best effort). `names`
    /// holds the per-object display names, so a snapshot can answer
    /// by-name queries without the source or the linked database.
    fn save(&self, prov: &Provenance, sealed: &SealedGraph, names: &[String]);
}

/// Optional persistence hooks for [`analyze_with`]. The default (no hooks)
/// makes `analyze_with` behave exactly like [`analyze`].
#[derive(Default)]
pub struct AnalyzeHooks<'a> {
    /// Consulted per file before compiling.
    pub compile_cache: Option<&'a dyn CompileCache>,
    /// Consulted once before solving.
    pub snapshots: Option<&'a dyn SnapshotHook>,
}

/// Fingerprint of the options that shape compiled objects: include dirs,
/// defines, include depth, and the lowering configuration. Folded into
/// compile-cache keys and snapshot provenance.
#[must_use]
pub fn options_fingerprint(pp: &PpOptions, lower: &LowerOptions) -> u64 {
    // Debug formatting is stable within one build of the tool, which is the
    // strongest guarantee a cache keyed on in-memory options can need; the
    // object-format version is folded in so cache entries from an older
    // format are never decoded.
    fnv64(format!("clav{}|{pp:?}|{lower:?}", cla_cladb::VERSION).as_bytes())
}

/// Hash of one file's preprocessed closure: every source the preprocessor
/// read for it (main file and all headers, names and contents, in read
/// order) plus the options fingerprint. Editing the file, any header it
/// includes, an include path, or a define all change the hash.
#[must_use]
pub fn closure_hash(pre: &Preprocessed, file: &str, options_fp: u64) -> u64 {
    let mut acc = Vec::new();
    acc.extend_from_slice(&options_fp.to_le_bytes());
    acc.extend_from_slice(&(file.len() as u64).to_le_bytes());
    acc.extend_from_slice(file.as_bytes());
    for (_, sf) in pre.sources.iter() {
        acc.extend_from_slice(&(sf.name.len() as u64).to_le_bytes());
        acc.extend_from_slice(sf.name.as_bytes());
        acc.extend_from_slice(&fnv64(sf.src.as_bytes()).to_le_bytes());
    }
    fnv64(&acc)
}

/// Everything measured across one pipeline run (one row of Table 2+3).
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub files: usize,
    /// Bytes of source consumed by the compile phase (after include
    /// expansion — the paper's "LOC preproc." proxy).
    pub source_bytes: u64,
    /// Approximate preprocessed line count.
    pub preprocessed_lines: usize,
    /// Program variables (Table 2).
    pub program_variables: usize,
    /// Counts of the five assignment forms (Table 2).
    pub assign_counts: AssignCounts,
    /// Linked object file size in bytes (Table 2 "object size").
    pub object_size: usize,
    pub link_stats: LinkStats,
    /// Demand-loading counters (Table 3 in-core/loaded/in-file).
    pub load_stats: LoadStats,
    pub solve_stats: SolveStats,
    /// Table 3 "pointer variables".
    pub pointer_variables: usize,
    /// Table 3 "points-to relations".
    pub relations: usize,
    pub compile_time: Duration,
    pub link_time: Duration,
    pub solve_time: Duration,
    /// Files whose object came out of the compile cache (0 without a cache).
    pub compile_cache_hits: usize,
    /// Files that were actually compiled this run.
    pub compile_cache_misses: usize,
    /// Whether the solve phase was skipped by loading a snapshot.
    pub snapshot_loaded: bool,
    /// Compile worker threads actually used (1 without `parallel_compile`).
    pub jobs: usize,
    /// High-water mark of compiled units held in memory while the
    /// streaming link waited for an earlier unit: the compile+link phase's
    /// real memory exposure, bounded by twice the thread-pool size, never
    /// by the codebase.
    pub peak_buffered_units: usize,
    /// Process peak resident set size in bytes at the end of the run
    /// (Linux `VmHWM`; 0 where unavailable).
    pub peak_rss_bytes: u64,
    /// The most expensive files of the compile phase, costliest first
    /// (wall time of each file's preprocess+parse+lower, capped at
    /// [`SLOWEST_FILES_CAP`] entries). On generated codebases this is how
    /// a profile names the outlier files worth shrinking.
    pub slowest_files: Vec<(String, Duration)>,
    /// Files whose compile failed, panicked, or overran a budget, in input
    /// order with typed reasons. Empty in strict mode (the run would have
    /// aborted instead) and on clean runs.
    pub quarantined: Vec<Quarantined>,
    /// Referenced-but-undefined globals that received conservative unknown
    /// summaries at link time (0 unless quarantine fired with
    /// [`PipelineOptions::unknown_summaries`] on).
    pub unknown_summaries: usize,
}

/// Number of entries retained in [`Report::slowest_files`].
pub const SLOWEST_FILES_CAP: usize = 10;

impl Report {
    /// Table 3 "in core": complex assignments retained by the solver.
    pub fn assigns_in_core(&self) -> usize {
        self.solve_stats.complex_in_core
    }

    /// A rough analysis-memory figure: solver structures plus resident
    /// object metadata (the object file itself is demand-paged).
    pub fn approx_analysis_bytes(&self) -> usize {
        self.solve_stats.approx_bytes
    }

    /// True when any unit was quarantined: every answer derived from this
    /// run covers only the surviving units and must be marked partial.
    pub fn is_partial(&self) -> bool {
        !self.quarantined.is_empty()
    }
}

/// The outcome of a full compile-link-analyze run.
#[derive(Debug)]
pub struct Analysis {
    /// Points-to sets over the linked program's objects.
    pub points_to: PointsTo,
    /// The linked program database (shared with the dependence analysis).
    pub database: Database,
    /// Measurements.
    pub report: Report,
}

/// Compiles `files` from `fs`, links them, writes the program database, and
/// runs the demand-driven pre-transitive solver.
///
/// # Errors
///
/// Returns the first frontend error encountered, or a database error if the
/// freshly linked object file fails to open (which would indicate damage
/// between write and read, or a writer bug — either way a typed error, not
/// a panic).
pub fn analyze(
    fs: &dyn FileProvider,
    files: &[&str],
    opts: &PipelineOptions,
) -> Result<Analysis, PipelineError> {
    analyze_with(fs, files, opts, &AnalyzeHooks::default())
}

/// [`analyze`] with persistence hooks: an optional compile cache (per-file
/// object reuse keyed by the preprocessed closure) and an optional snapshot
/// hook (skip the solve entirely when a saved graph's provenance matches).
/// With both hooks a warm restart does no parsing, no lowering, and no
/// fixpoint — it relinks cached objects and loads the sealed graph.
///
/// # Errors
///
/// Same as [`analyze`]. Hook failures are never errors: a missing or
/// mismatched cache entry or snapshot just falls back to the real work.
pub fn analyze_with(
    fs: &dyn FileProvider,
    files: &[&str],
    opts: &PipelineOptions,
    hooks: &AnalyzeHooks<'_>,
) -> Result<Analysis, PipelineError> {
    // Phase times come from the same spans that emit trace events, so the
    // `Report` and a recorded trace can never disagree about a duration.
    let obs = cla_obs::global();
    // Closure hashes are needed by both hooks; without hooks the keying
    // preprocess is skipped and the pipeline runs exactly as before.
    let keyed = hooks.compile_cache.is_some() || hooks.snapshots.is_some();
    let options_fp = options_fingerprint(&opts.pp, &opts.lower);

    // The streaming compile+link: each unit folds into the program the
    // moment it (and every earlier unit) is compiled, then drops. Folding
    // overlaps compilation, so `compile_time` covers both and `link_time`
    // covers finalization + serialization + open.
    let mut sp = obs.span("pipeline", "pipeline.compile");
    sp.set("files", files.len());
    let streamed = if keyed {
        stream_compile_link(files, opts, |f| {
            compile_one_keyed(fs, f, opts, options_fp, hooks.compile_cache)
        })?
    } else {
        stream_compile_link(files, opts, |f| {
            compile_file(fs, f, &opts.pp, &opts.lower).map(|(unit, stats)| CompiledFile {
                unit,
                stats,
                key: 0,
                cache_hit: false,
            })
        })?
    };
    let StreamedCompile {
        linker,
        stats,
        keys,
        durs,
        cache_hits: compile_cache_hits,
        jobs,
        quarantined: quarantined_ix,
    } = streamed;
    let quarantined: Vec<Quarantined> = quarantined_ix
        .into_iter()
        .map(|(i, reason)| Quarantined {
            file: files[i].to_string(),
            reason,
        })
        .collect();
    for q in &quarantined {
        obs.counter("cla_front_quarantined_total").inc();
        if q.reason.is_budget() {
            obs.counter("cla_front_budget_exceeded_total").inc();
        }
    }
    let partial = !quarantined.is_empty();
    let slowest_files = {
        let mut ranked: Vec<(String, Duration)> = files
            .iter()
            .zip(&durs)
            .map(|(f, &d)| ((*f).to_string(), d))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(SLOWEST_FILES_CAP);
        ranked
    };
    let compile_cache_misses = files.len() - compile_cache_hits;
    let inputs: Vec<(String, u64)> = files
        .iter()
        .zip(&keys)
        .map(|(f, &k)| ((*f).to_string(), k))
        .collect();
    sp.set("cache_hits", compile_cache_hits);
    sp.set("jobs", jobs);
    let compile_time = sp.finish();

    let mut sp = obs.span("pipeline", "pipeline.link");
    let peak_buffered_units = linker.peak_buffered().max(1);
    let (mut program, link_stats) = linker.finish();
    let unknown_summaries = if partial && opts.unknown_summaries {
        add_unknown_summaries(&mut program)
    } else {
        0
    };
    let bytes = write_object(&program);
    let program_variables = program.program_variable_count();
    let assign_counts = program.assign_counts();
    drop(program);
    let object_size = bytes.len();
    let db = Database::open(bytes)?;
    sp.set("object_bytes", object_size);
    let link_time = sp.finish();

    let sp = obs.span("pipeline", "pipeline.solve");
    let mut snapshot_loaded = false;
    // Partial runs bypass the snapshot store in both directions: a
    // quarantined file keys as 0 in the provenance, so persisting (or
    // serving) a partial graph under it would alias distinct hostile
    // inputs to one snapshot.
    let snapshot_hook = if partial { None } else { hooks.snapshots };
    let (points_to, solve_stats) = match snapshot_hook {
        None => solve_database(&db, opts.solver),
        Some(hook) => {
            let prov = Provenance {
                inputs,
                options_fp,
                solver: opts.solver,
            };
            if let Some(sealed) = hook.load(&prov) {
                snapshot_loaded = true;
                (sealed.extract_points_to(db.objects()), sealed.stats())
            } else {
                let sealed = Warm::from_database(&db, opts.solver).seal();
                let pts = sealed.extract_points_to(db.objects());
                let names: Vec<String> = db.objects().iter().map(|o| o.name.clone()).collect();
                hook.save(&prov, &sealed, &names);
                (pts, sealed.stats())
            }
        }
    };
    let solve_time = sp.finish();

    let report = Report {
        files: files.len(),
        source_bytes: stats.iter().map(|s| s.source_bytes).sum(),
        preprocessed_lines: stats.iter().map(|s| s.preprocessed_lines).sum(),
        program_variables,
        assign_counts,
        object_size,
        link_stats,
        load_stats: db.load_stats(),
        solve_stats,
        pointer_variables: points_to.pointer_variables(),
        relations: points_to.relations(),
        compile_time,
        link_time,
        solve_time,
        compile_cache_hits,
        compile_cache_misses,
        snapshot_loaded,
        jobs,
        peak_buffered_units,
        peak_rss_bytes: cla_obs::peak_rss_bytes(),
        slowest_files,
        quarantined,
        unknown_summaries,
    };
    Ok(Analysis {
        points_to,
        database: db,
        report,
    })
}

/// One compiled input plus its cache bookkeeping.
struct CompiledFile {
    unit: CompiledUnit,
    stats: CompileStats,
    /// Preprocessed-closure hash (0 when no hook asked for keys).
    key: u64,
    cache_hit: bool,
}

/// Compiles one file through the compile cache: preprocess (to key the
/// cache and detect header changes), reuse the stored object on a hit, and
/// compile + store on a miss. A cache entry that fails to open or decode is
/// treated as a miss — the checksummed object reader makes feeding damaged
/// bytes back safe.
fn compile_one_keyed(
    fs: &dyn FileProvider,
    f: &str,
    opts: &PipelineOptions,
    options_fp: u64,
    cache: Option<&dyn CompileCache>,
) -> Result<CompiledFile, CError> {
    let pre = cla_cfront::pp::preprocess(fs, f, &opts.pp)?;
    let key = closure_hash(&pre, f, options_fp);
    if let Some(cache) = cache {
        if let Some(bytes) = cache.load(key) {
            if let Ok(unit) = Database::open(bytes).and_then(|db| db.to_unit()) {
                // The keying preprocess saw the same bytes the original
                // compile did, so the hit's stats match a fresh compile.
                let stats = CompileStats {
                    source_bytes: pre.stats.bytes_in,
                    preprocessed_lines: pre.stats.lines_out,
                    tokens: pre.stats.tokens_out,
                };
                return Ok(CompiledFile {
                    unit,
                    stats,
                    key,
                    cache_hit: true,
                });
            }
        }
    }
    let (unit, stats) = compile_file(fs, f, &opts.pp, &opts.lower)?;
    if let Some(cache) = cache {
        cache.store(key, &write_object(&unit));
    }
    Ok(CompiledFile {
        unit,
        stats,
        key,
        cache_hit: false,
    })
}

/// The result of the streaming compile+link phase: the program is already
/// folded inside `linker`; per-file stats and cache keys ride alongside in
/// input order.
struct StreamedCompile {
    linker: StreamLinker,
    stats: Vec<CompileStats>,
    keys: Vec<u64>,
    /// Wall time each file spent in `one` (compile or cache hit), in
    /// input order — the raw material for `Report::slowest_files`.
    durs: Vec<Duration>,
    cache_hits: usize,
    jobs: usize,
    /// Quarantined inputs by index, sorted in input order (empty in strict
    /// mode — the run errors out instead).
    quarantined: Vec<(usize, QuarantineReason)>,
}

/// Renders a `catch_unwind` payload as text (the conventional `&str` /
/// `String` payloads; anything else gets a placeholder).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Collapses a quarantine reason to a typed error for strict mode: panics
/// become a `CError` instead of re-raising, so even fail-fast callers get a
/// value, never a poisoned thread pool.
fn reason_to_cerror(reason: QuarantineReason) -> CError {
    match reason {
        QuarantineReason::Error(e) => e,
        QuarantineReason::Panic(msg) => CError::parse(
            format!("internal frontend panic: {msg}"),
            cla_cfront::Loc::BUILTIN,
        ),
    }
}

/// PIP-style conservative summaries for incomplete programs (*Making
/// Andersen's Points-to Analysis Sound and Practical for Incomplete C
/// Programs*): once units are quarantined, any global that is referenced
/// but never defined may live in a lost unit and do anything. One abstract
/// object `<unknown>` stands for everything such symbols could reach:
///
/// * `g = &<unknown>` for every undefined global `g` — dereferencing it
///   reaches the unknown blob instead of nothing;
/// * `<unknown> = &<unknown>` — chains of dereferences stay closed;
/// * for every call signature of an undefined function: `f$ret =
///   &<unknown>` and `<unknown> = f$N` — results come from the blob,
///   arguments escape into it.
///
/// Returns how many undefined globals were summarized.
fn add_unknown_summaries(program: &mut cla_ir::CompiledUnit) -> usize {
    use cla_ir::{AssignKind, ObjId, ObjKind, ObjectInfo, OpKind, PrimAssign, SrcLoc, Strength};
    // A global is undefined when no surviving unit defines it (the linker
    // ORs the per-unit `defined` bits). Param/ret objects are global-linked
    // too but are summarized through their function's signature, not here.
    let undefined: Vec<ObjId> = program
        .objects
        .iter()
        .enumerate()
        .filter(|(_, o)| {
            o.link_name.is_some() && !o.defined && matches!(o.kind, ObjKind::Var | ObjKind::Func)
        })
        .map(|(i, _)| ObjId(i as u32))
        .collect();
    if undefined.is_empty() {
        return 0;
    }
    let unknown = program.push_object(ObjectInfo::global(
        "<unknown>",
        ObjKind::Heap,
        "",
        SrcLoc::NONE,
    ));
    let edge = |kind, dst, src| PrimAssign {
        kind,
        dst,
        src,
        strength: Strength::Weak,
        op: OpKind::Direct,
        loc: SrcLoc::NONE,
    };
    program.push_assign(edge(AssignKind::Addr, unknown, unknown));
    let undefined_set: std::collections::HashSet<ObjId> = undefined.iter().copied().collect();
    let summarized_sigs: Vec<(ObjId, Vec<ObjId>)> = program
        .funsigs
        .iter()
        .filter(|s| undefined_set.contains(&s.obj) && !s.is_indirect)
        .map(|s| (s.ret, s.params.clone()))
        .collect();
    for &g in &undefined {
        program.push_assign(edge(AssignKind::Addr, g, unknown));
    }
    for (ret, params) in summarized_sigs {
        program.push_assign(edge(AssignKind::Addr, ret, unknown));
        for p in params {
            program.push_assign(edge(AssignKind::Copy, unknown, p));
        }
    }
    undefined.len()
}

/// Compiles every file with `one` and folds each unit into a
/// [`StreamLinker`] as it completes, dropping the unit immediately —
/// compiled units are never collected into a `Vec`, so peak memory is the
/// program under construction plus a bounded reorder window (at most
/// `2 × jobs` units), not the whole codebase.
///
/// Units fold strictly in input order regardless of completion order, so
/// the linked program is byte-identical to a serial compile. Workers take
/// file indices from a shared counter and block (condvar) whenever they
/// would run more than the window ahead of the fold, which is what bounds
/// the buffer.
fn stream_compile_link(
    files: &[&str],
    opts: &PipelineOptions,
    one: impl Fn(&str) -> Result<CompiledFile, CError> + Sync,
) -> Result<StreamedCompile, CError> {
    // Every compile runs under `catch_unwind`: a panic in the frontend is a
    // bug in *our* code, but it is triggered by *their* bytes, and one
    // hostile file must not take down the run (or, in the parallel path,
    // kill a worker thread and strand everyone waiting on the condvar).
    let guarded = |f: &str| -> Result<CompiledFile, QuarantineReason> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| one(f))) {
            Ok(Ok(c)) => Ok(c),
            Ok(Err(e)) => Err(QuarantineReason::Error(e)),
            Err(payload) => Err(QuarantineReason::Panic(panic_message(payload))),
        }
    };
    let mut linker = StreamLinker::new("a.out");
    let mut quarantined: Vec<(usize, QuarantineReason)> = Vec::new();
    if !opts.parallel_compile || files.len() < 2 {
        let mut stats = Vec::with_capacity(files.len());
        let mut keys = Vec::with_capacity(files.len());
        let mut durs = Vec::with_capacity(files.len());
        let mut cache_hits = 0usize;
        for (i, f) in files.iter().enumerate() {
            let t = std::time::Instant::now();
            match guarded(f) {
                Ok(c) => {
                    durs.push(t.elapsed());
                    stats.push(c.stats);
                    keys.push(c.key);
                    cache_hits += usize::from(c.cache_hit);
                    linker.push(i, c.unit);
                }
                Err(reason) => {
                    if opts.strict {
                        return Err(reason_to_cerror(reason));
                    }
                    // An empty unit keeps the linker's index sequence
                    // intact; it contributes no objects and no assignments.
                    durs.push(t.elapsed());
                    stats.push(CompileStats::default());
                    keys.push(0);
                    quarantined.push((i, reason));
                    linker.push(i, CompiledUnit::new(*f));
                }
            }
        }
        return Ok(StreamedCompile {
            linker,
            stats,
            keys,
            durs,
            cache_hits,
            jobs: 1,
            quarantined,
        });
    }

    let jobs = effective_jobs(opts.jobs).min(files.len());
    let window = jobs * 2;
    let strict = opts.strict;
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    // Fold progress, shared with the workers for backpressure.
    let progress = Mutex::new(0usize);
    let unblocked = Condvar::new();
    let (tx, rx) = mpsc::channel::<(usize, Duration, Result<CompiledFile, QuarantineReason>)>();
    let mut slots: Vec<Option<(CompileStats, u64, bool, Duration)>> =
        (0..files.len()).map(|_| None).collect();
    let mut first_err: Option<CError> = None;
    let guarded = &guarded;
    let (next, abort, progress, unblocked) = (&next, &abort, &progress, &unblocked);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Relaxed);
                if i >= files.len() || abort.load(Relaxed) {
                    break;
                }
                {
                    let mut folded = progress.lock().unwrap();
                    while i >= *folded + window && !abort.load(Relaxed) {
                        folded = unblocked.wait(folded).unwrap();
                    }
                }
                if abort.load(Relaxed) {
                    break;
                }
                let t = std::time::Instant::now();
                let r = guarded(files[i]);
                let failed = r.is_err();
                if tx.send((i, t.elapsed(), r)).is_err() {
                    break;
                }
                // Only strict mode aborts the pool: under quarantine the
                // remaining files still compile, and the failed index is
                // folded as an empty unit by the main loop below.
                if failed && strict {
                    abort.store(true, Relaxed);
                    unblocked.notify_all();
                }
            });
        }
        drop(tx);
        for (i, dur, r) in rx {
            match r {
                Ok(c) => {
                    slots[i] = Some((c.stats, c.key, c.cache_hit, dur));
                    linker.push(i, c.unit);
                    let mut folded = progress.lock().unwrap();
                    *folded = linker.folded();
                    drop(folded);
                    unblocked.notify_all();
                }
                Err(reason) if strict => {
                    if first_err.is_none() {
                        first_err = Some(reason_to_cerror(reason));
                    }
                }
                Err(reason) => {
                    // Quarantine: fold an empty placeholder so the strict
                    // input-order link — and the workers blocked on its
                    // progress — keep moving.
                    slots[i] = Some((CompileStats::default(), 0, false, dur));
                    quarantined.push((i, reason));
                    linker.push(i, CompiledUnit::new(files[i]));
                    let mut folded = progress.lock().unwrap();
                    *folded = linker.folded();
                    drop(folded);
                    unblocked.notify_all();
                }
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    let mut stats = Vec::with_capacity(files.len());
    let mut keys = Vec::with_capacity(files.len());
    let mut durs = Vec::with_capacity(files.len());
    let mut cache_hits = 0usize;
    for slot in slots {
        let (s, k, hit, d) = slot.expect("every file compiled");
        stats.push(s);
        keys.push(k);
        durs.push(d);
        cache_hits += usize::from(hit);
    }
    // Workers finish out of order; the ledger reads in input order.
    quarantined.sort_by_key(|&(i, _)| i);
    Ok(StreamedCompile {
        linker,
        stats,
        keys,
        durs,
        cache_hits,
        jobs,
        quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cla_cfront::MemoryFs;

    fn fs_of(files: &[(&str, &str)]) -> MemoryFs {
        let mut fs = MemoryFs::new();
        for (p, c) in files {
            fs.add(*p, *c);
        }
        fs
    }

    #[test]
    fn end_to_end_two_files() {
        let fs = fs_of(&[
            ("a.c", "int target; int *p; void fa(void) { p = &target; }"),
            ("b.c", "extern int *p; int *q; void fb(void) { q = p; }"),
        ]);
        let analysis = analyze(&fs, &["a.c", "b.c"], &PipelineOptions::default()).unwrap();
        let db = &analysis.database;
        let q = db.targets("q")[0];
        let target = db.targets("target")[0];
        assert!(analysis.points_to.may_point_to(q, target));
        let r = &analysis.report;
        assert_eq!(r.files, 2);
        assert!(r.object_size > 0);
        assert!(r.pointer_variables >= 2);
        assert!(r.relations >= 2);
        assert!(r.source_bytes > 0);
        // Per-file attribution: both files ranked, costliest first.
        assert_eq!(r.slowest_files.len(), 2);
        assert!(r.slowest_files[0].1 >= r.slowest_files[1].1);
        assert!(r.slowest_files.iter().any(|(f, _)| f == "a.c"));
    }

    #[test]
    fn parallel_compile_matches_serial() {
        let files: Vec<(String, String)> = (0..8)
            .map(|i| {
                (
                    format!("f{i}.c"),
                    format!("int g{i}; int *p{i}; void fn{i}(void) {{ p{i} = &g{i}; }}"),
                )
            })
            .collect();
        let mut fs = MemoryFs::new();
        for (p, c) in &files {
            fs.add(p.clone(), c.clone());
        }
        let names: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        let serial = analyze(&fs, &names, &PipelineOptions::default()).unwrap();
        let par = analyze(
            &fs,
            &names,
            &PipelineOptions {
                parallel_compile: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial.points_to, par.points_to);
        assert_eq!(serial.report.assign_counts, par.report.assign_counts);
    }

    #[test]
    fn compile_errors_propagate() {
        let fs = fs_of(&[("bad.c", "int x = ;")]);
        assert!(analyze(&fs, &["bad.c"], &PipelineOptions::default()).is_err());
        let fs = fs_of(&[("missing_include.c", "#include \"nope.h\"\n")]);
        assert!(analyze(&fs, &["missing_include.c"], &PipelineOptions::default()).is_err());
    }

    #[test]
    fn quarantine_and_continue_lenient() {
        let fs = fs_of(&[
            (
                "good.c",
                "int target; int *p; void fa(void) { p = &target; }",
            ),
            ("bad.c", "int x = ;"),
            ("worse.c", "#include \"nope.h\"\n"),
        ]);
        let opts = PipelineOptions {
            strict: false,
            ..Default::default()
        };
        let a = analyze(&fs, &["good.c", "bad.c", "worse.c"], &opts).unwrap();
        let r = &a.report;
        assert!(r.is_partial());
        assert_eq!(r.quarantined.len(), 2);
        // Ledger is sorted by input order and names exactly the failing files.
        assert_eq!(r.quarantined[0].file, "bad.c");
        assert_eq!(r.quarantined[1].file, "worse.c");
        assert!(matches!(
            r.quarantined[0].reason,
            QuarantineReason::Error(_)
        ));
        // The surviving unit still answers queries.
        let p = a.database.targets("p")[0];
        let target = a.database.targets("target")[0];
        assert!(a.points_to.may_point_to(p, target));
    }

    #[test]
    fn quarantine_parallel_matches_serial() {
        let mut files: Vec<(String, String)> = (0..12)
            .map(|i| {
                (
                    format!("f{i}.c"),
                    format!("int g{i}; int *p{i}; void fn{i}(void) {{ p{i} = &g{i}; }}"),
                )
            })
            .collect();
        files[3].1 = "int broken = ;".to_string();
        files[9].1 = "#include \"missing.h\"\n".to_string();
        let mut fs = MemoryFs::new();
        for (p, c) in &files {
            fs.add(p.clone(), c.clone());
        }
        let names: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        let lenient = PipelineOptions {
            strict: false,
            ..Default::default()
        };
        let serial = analyze(&fs, &names, &lenient).unwrap();
        let par = analyze(
            &fs,
            &names,
            &PipelineOptions {
                parallel_compile: true,
                ..lenient.clone()
            },
        )
        .unwrap();
        assert_eq!(serial.points_to, par.points_to);
        let ledger = |a: &Analysis| -> Vec<String> {
            a.report
                .quarantined
                .iter()
                .map(|q| q.file.clone())
                .collect()
        };
        assert_eq!(ledger(&serial), vec!["f3.c", "f9.c"]);
        assert_eq!(ledger(&serial), ledger(&par));
    }

    #[test]
    fn strict_parallel_still_fails_fast_on_panic_free_error() {
        let fs = fs_of(&[("ok.c", "int a;"), ("bad.c", "int x = ;")]);
        let opts = PipelineOptions {
            parallel_compile: true,
            ..Default::default()
        };
        assert!(analyze(&fs, &["ok.c", "bad.c"], &opts).is_err());
    }

    #[test]
    fn unknown_summaries_inject_conservative_answers() {
        // `ext_p` and `ext_fn` are referenced but never defined (their
        // defining unit is quarantined), so with `unknown_summaries` every
        // read of them conservatively yields the `<unknown>` object.
        let fs = fs_of(&[
            (
                "use.c",
                "extern int *ext_p; extern int *ext_fn(int *a);
                 int *q, *r, local;
                 void f(void) { q = ext_p; r = ext_fn(&local); }",
            ),
            ("def.c", "int x = ;"),
        ]);
        let opts = PipelineOptions {
            strict: false,
            unknown_summaries: true,
            ..Default::default()
        };
        let a = analyze(&fs, &["use.c", "def.c"], &opts).unwrap();
        assert!(a.report.unknown_summaries >= 2);
        let unknown = a.database.targets("<unknown>")[0];
        let q = a.database.targets("q")[0];
        let r = a.database.targets("r")[0];
        assert!(a.points_to.may_point_to(q, unknown));
        assert!(a.points_to.may_point_to(r, unknown));

        // Without the flag the flows are silently missing (minimal answers).
        let bare = analyze(
            &fs,
            &["use.c", "def.c"],
            &PipelineOptions {
                strict: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(bare.report.unknown_summaries, 0);
        assert!(bare.database.targets("<unknown>").is_empty());
    }

    #[test]
    fn budget_overrun_is_quarantined_with_budget_reason() {
        let bomb = "#define A0 x\n#define A1 A0 A0\n#define A2 A1 A1\n\
                    #define A3 A2 A2\n#define A4 A3 A3\n#define A5 A4 A4\n\
                    #define A6 A5 A5\n#define A7 A6 A6\n#define A8 A7 A7\n\
                    int arr[1] = {0}; /* A8 */\nint y = A8;\n";
        let fs = fs_of(&[("bomb.c", bomb), ("ok.c", "int fine;")]);
        let mut opts = PipelineOptions {
            strict: false,
            ..Default::default()
        };
        opts.pp.limits.macro_fuel = 64;
        let a = analyze(&fs, &["bomb.c", "ok.c"], &opts).unwrap();
        assert_eq!(a.report.quarantined.len(), 1);
        assert_eq!(a.report.quarantined[0].file, "bomb.c");
        assert!(a.report.quarantined[0].reason.is_budget());
        assert!(!a.database.targets("fine").is_empty());
    }

    #[test]
    fn report_load_accounting() {
        let fs = fs_of(&[(
            "a.c",
            "int x, *p; void f(void) { p = &x; }
             int i0, i1; void g(void) { i0 = i1; }",
        )]);
        let a = analyze(&fs, &["a.c"], &PipelineOptions::default()).unwrap();
        let ls = a.report.load_stats;
        assert!(ls.assigns_in_file >= 2);
        // The integer-only chain must not be loaded.
        assert!(ls.assigns_loaded < ls.assigns_in_file);
    }
}
