//! The end-to-end compile-link-analyze pipeline.
//!
//! Drives the three CLA phases over a set of source files: parallel
//! per-file compilation (the architecture explicitly supports separate
//! and/or parallel compilation — paper §1), linking into one program
//! database, and demand-driven points-to analysis. Produces the timing and
//! space measurements the paper's Tables 2 and 3 report.

use crate::pretransitive::{solve_database, SealedGraph, SolveOptions, SolveStats, Warm};
use crate::solution::PointsTo;
use cla_cfront::{CError, FileProvider, PpOptions, Preprocessed};
use cla_cladb::{fnv64, write_object, Database, DbError, LinkStats, LoadStats, StreamLinker};
use cla_ir::{compile_file, AssignCounts, CompileStats, CompiledUnit, LowerOptions};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::Duration;

/// An error from any phase of the pipeline.
///
/// Compile errors come from the frontend; database errors come from opening
/// the linked object file. The latter were previously treated as impossible
/// (`expect`), but a pipeline whose output goes through a filesystem — or a
/// caller that routes pre-built object bytes here — must surface corruption
/// as a value, not a panic (DESIGN.md §10).
#[derive(Debug)]
pub enum PipelineError {
    /// A frontend (preprocess/parse/lower) error.
    Frontend(CError),
    /// The linked database failed to open or verify.
    Db(DbError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Frontend(e) => write!(f, "{e}"),
            PipelineError::Db(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CError> for PipelineError {
    fn from(e: CError) -> Self {
        PipelineError::Frontend(e)
    }
}

impl From<DbError> for PipelineError {
    fn from(e: DbError) -> Self {
        PipelineError::Db(e)
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineOptions {
    pub pp: PpOptions,
    pub lower: LowerOptions,
    pub solver: SolveOptions,
    /// Compile source files on a thread pool.
    pub parallel_compile: bool,
    /// Cap on the compile thread pool: at most this many worker threads
    /// (0 = one thread per CPU). Only consulted with `parallel_compile`.
    pub jobs: usize,
}

/// Resolves a `jobs` cap (0 = auto) to a concrete thread count.
#[must_use]
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
    }
}

/// A persistent compile cache: preprocessed-source key → serialized object
/// file. [`analyze_with`] consults it before compiling each file and feeds
/// it after each miss, so compiles skip across process restarts (the on-disk
/// implementation lives in `cla-snap`). Implementations must tolerate
/// concurrent use — the pipeline calls them from its compile thread pool.
pub trait CompileCache: Send + Sync {
    /// The object bytes previously stored under `key`, if any. Returning
    /// damaged bytes is safe: the pipeline re-opens them through the
    /// checksummed reader and falls back to a fresh compile on any error.
    fn load(&self, key: u64) -> Option<Vec<u8>>;
    /// Persists object bytes under `key` (best effort; errors are the
    /// implementation's to swallow — a failed store only costs a future
    /// recompile).
    fn store(&self, key: u64, bytes: &[u8]);
}

/// Identity of one analysis run: what was analyzed and with which options.
///
/// A snapshot saved under one provenance may only be loaded under an equal
/// provenance — any edited input (headers included: input hashes cover the
/// whole preprocessed closure), changed preprocessor/lowering option, or
/// changed solver option forces a full re-solve instead of stale answers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Provenance {
    /// Per input file, in command order: (file name, hash of the file's
    /// preprocessed closure — every source read while preprocessing it,
    /// see [`closure_hash`]).
    pub inputs: Vec<(String, u64)>,
    /// Fingerprint of the non-solver options
    /// (see [`options_fingerprint`]).
    pub options_fp: u64,
    /// Solver options the graph was (or will be) solved with.
    pub solver: SolveOptions,
}

/// Short-circuits the solve phase of [`analyze_with`] with a persisted
/// result (the on-disk snapshot store lives in `cla-snap`).
pub trait SnapshotHook: Send + Sync {
    /// A sealed graph previously saved under exactly this provenance, or
    /// `None` (missing, corrupt, or provenance mismatch — the caller
    /// re-solves in every case).
    fn load(&self, prov: &Provenance) -> Option<SealedGraph>;
    /// Persists a freshly solved graph under `prov` (best effort). `names`
    /// holds the per-object display names, so a snapshot can answer
    /// by-name queries without the source or the linked database.
    fn save(&self, prov: &Provenance, sealed: &SealedGraph, names: &[String]);
}

/// Optional persistence hooks for [`analyze_with`]. The default (no hooks)
/// makes `analyze_with` behave exactly like [`analyze`].
#[derive(Default)]
pub struct AnalyzeHooks<'a> {
    /// Consulted per file before compiling.
    pub compile_cache: Option<&'a dyn CompileCache>,
    /// Consulted once before solving.
    pub snapshots: Option<&'a dyn SnapshotHook>,
}

/// Fingerprint of the options that shape compiled objects: include dirs,
/// defines, include depth, and the lowering configuration. Folded into
/// compile-cache keys and snapshot provenance.
#[must_use]
pub fn options_fingerprint(pp: &PpOptions, lower: &LowerOptions) -> u64 {
    // Debug formatting is stable within one build of the tool, which is the
    // strongest guarantee a cache keyed on in-memory options can need; the
    // object-format version is folded in so cache entries from an older
    // format are never decoded.
    fnv64(format!("clav{}|{pp:?}|{lower:?}", cla_cladb::VERSION).as_bytes())
}

/// Hash of one file's preprocessed closure: every source the preprocessor
/// read for it (main file and all headers, names and contents, in read
/// order) plus the options fingerprint. Editing the file, any header it
/// includes, an include path, or a define all change the hash.
#[must_use]
pub fn closure_hash(pre: &Preprocessed, file: &str, options_fp: u64) -> u64 {
    let mut acc = Vec::new();
    acc.extend_from_slice(&options_fp.to_le_bytes());
    acc.extend_from_slice(&(file.len() as u64).to_le_bytes());
    acc.extend_from_slice(file.as_bytes());
    for (_, sf) in pre.sources.iter() {
        acc.extend_from_slice(&(sf.name.len() as u64).to_le_bytes());
        acc.extend_from_slice(sf.name.as_bytes());
        acc.extend_from_slice(&fnv64(sf.src.as_bytes()).to_le_bytes());
    }
    fnv64(&acc)
}

/// Everything measured across one pipeline run (one row of Table 2+3).
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub files: usize,
    /// Bytes of source consumed by the compile phase (after include
    /// expansion — the paper's "LOC preproc." proxy).
    pub source_bytes: u64,
    /// Approximate preprocessed line count.
    pub preprocessed_lines: usize,
    /// Program variables (Table 2).
    pub program_variables: usize,
    /// Counts of the five assignment forms (Table 2).
    pub assign_counts: AssignCounts,
    /// Linked object file size in bytes (Table 2 "object size").
    pub object_size: usize,
    pub link_stats: LinkStats,
    /// Demand-loading counters (Table 3 in-core/loaded/in-file).
    pub load_stats: LoadStats,
    pub solve_stats: SolveStats,
    /// Table 3 "pointer variables".
    pub pointer_variables: usize,
    /// Table 3 "points-to relations".
    pub relations: usize,
    pub compile_time: Duration,
    pub link_time: Duration,
    pub solve_time: Duration,
    /// Files whose object came out of the compile cache (0 without a cache).
    pub compile_cache_hits: usize,
    /// Files that were actually compiled this run.
    pub compile_cache_misses: usize,
    /// Whether the solve phase was skipped by loading a snapshot.
    pub snapshot_loaded: bool,
    /// Compile worker threads actually used (1 without `parallel_compile`).
    pub jobs: usize,
    /// High-water mark of compiled units held in memory while the
    /// streaming link waited for an earlier unit: the compile+link phase's
    /// real memory exposure, bounded by twice the thread-pool size, never
    /// by the codebase.
    pub peak_buffered_units: usize,
    /// Process peak resident set size in bytes at the end of the run
    /// (Linux `VmHWM`; 0 where unavailable).
    pub peak_rss_bytes: u64,
    /// The most expensive files of the compile phase, costliest first
    /// (wall time of each file's preprocess+parse+lower, capped at
    /// [`SLOWEST_FILES_CAP`] entries). On generated codebases this is how
    /// a profile names the outlier files worth shrinking.
    pub slowest_files: Vec<(String, Duration)>,
}

/// Number of entries retained in [`Report::slowest_files`].
pub const SLOWEST_FILES_CAP: usize = 10;

impl Report {
    /// Table 3 "in core": complex assignments retained by the solver.
    pub fn assigns_in_core(&self) -> usize {
        self.solve_stats.complex_in_core
    }

    /// A rough analysis-memory figure: solver structures plus resident
    /// object metadata (the object file itself is demand-paged).
    pub fn approx_analysis_bytes(&self) -> usize {
        self.solve_stats.approx_bytes
    }
}

/// The outcome of a full compile-link-analyze run.
#[derive(Debug)]
pub struct Analysis {
    /// Points-to sets over the linked program's objects.
    pub points_to: PointsTo,
    /// The linked program database (shared with the dependence analysis).
    pub database: Database,
    /// Measurements.
    pub report: Report,
}

/// Compiles `files` from `fs`, links them, writes the program database, and
/// runs the demand-driven pre-transitive solver.
///
/// # Errors
///
/// Returns the first frontend error encountered, or a database error if the
/// freshly linked object file fails to open (which would indicate damage
/// between write and read, or a writer bug — either way a typed error, not
/// a panic).
pub fn analyze(
    fs: &dyn FileProvider,
    files: &[&str],
    opts: &PipelineOptions,
) -> Result<Analysis, PipelineError> {
    analyze_with(fs, files, opts, &AnalyzeHooks::default())
}

/// [`analyze`] with persistence hooks: an optional compile cache (per-file
/// object reuse keyed by the preprocessed closure) and an optional snapshot
/// hook (skip the solve entirely when a saved graph's provenance matches).
/// With both hooks a warm restart does no parsing, no lowering, and no
/// fixpoint — it relinks cached objects and loads the sealed graph.
///
/// # Errors
///
/// Same as [`analyze`]. Hook failures are never errors: a missing or
/// mismatched cache entry or snapshot just falls back to the real work.
pub fn analyze_with(
    fs: &dyn FileProvider,
    files: &[&str],
    opts: &PipelineOptions,
    hooks: &AnalyzeHooks<'_>,
) -> Result<Analysis, PipelineError> {
    // Phase times come from the same spans that emit trace events, so the
    // `Report` and a recorded trace can never disagree about a duration.
    let obs = cla_obs::global();
    // Closure hashes are needed by both hooks; without hooks the keying
    // preprocess is skipped and the pipeline runs exactly as before.
    let keyed = hooks.compile_cache.is_some() || hooks.snapshots.is_some();
    let options_fp = options_fingerprint(&opts.pp, &opts.lower);

    // The streaming compile+link: each unit folds into the program the
    // moment it (and every earlier unit) is compiled, then drops. Folding
    // overlaps compilation, so `compile_time` covers both and `link_time`
    // covers finalization + serialization + open.
    let mut sp = obs.span("pipeline", "pipeline.compile");
    sp.set("files", files.len());
    let streamed = if keyed {
        stream_compile_link(files, opts, |f| {
            compile_one_keyed(fs, f, opts, options_fp, hooks.compile_cache)
        })?
    } else {
        stream_compile_link(files, opts, |f| {
            compile_file(fs, f, &opts.pp, &opts.lower).map(|(unit, stats)| CompiledFile {
                unit,
                stats,
                key: 0,
                cache_hit: false,
            })
        })?
    };
    let StreamedCompile {
        linker,
        stats,
        keys,
        durs,
        cache_hits: compile_cache_hits,
        jobs,
    } = streamed;
    let slowest_files = {
        let mut ranked: Vec<(String, Duration)> = files
            .iter()
            .zip(&durs)
            .map(|(f, &d)| ((*f).to_string(), d))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(SLOWEST_FILES_CAP);
        ranked
    };
    let compile_cache_misses = files.len() - compile_cache_hits;
    let inputs: Vec<(String, u64)> = files
        .iter()
        .zip(&keys)
        .map(|(f, &k)| ((*f).to_string(), k))
        .collect();
    sp.set("cache_hits", compile_cache_hits);
    sp.set("jobs", jobs);
    let compile_time = sp.finish();

    let mut sp = obs.span("pipeline", "pipeline.link");
    let peak_buffered_units = linker.peak_buffered().max(1);
    let (program, link_stats) = linker.finish();
    let bytes = write_object(&program);
    let program_variables = program.program_variable_count();
    let assign_counts = program.assign_counts();
    drop(program);
    let object_size = bytes.len();
    let db = Database::open(bytes)?;
    sp.set("object_bytes", object_size);
    let link_time = sp.finish();

    let sp = obs.span("pipeline", "pipeline.solve");
    let mut snapshot_loaded = false;
    let (points_to, solve_stats) = match hooks.snapshots {
        None => solve_database(&db, opts.solver),
        Some(hook) => {
            let prov = Provenance {
                inputs,
                options_fp,
                solver: opts.solver,
            };
            if let Some(sealed) = hook.load(&prov) {
                snapshot_loaded = true;
                (sealed.extract_points_to(db.objects()), sealed.stats())
            } else {
                let sealed = Warm::from_database(&db, opts.solver).seal();
                let pts = sealed.extract_points_to(db.objects());
                let names: Vec<String> = db.objects().iter().map(|o| o.name.clone()).collect();
                hook.save(&prov, &sealed, &names);
                (pts, sealed.stats())
            }
        }
    };
    let solve_time = sp.finish();

    let report = Report {
        files: files.len(),
        source_bytes: stats.iter().map(|s| s.source_bytes).sum(),
        preprocessed_lines: stats.iter().map(|s| s.preprocessed_lines).sum(),
        program_variables,
        assign_counts,
        object_size,
        link_stats,
        load_stats: db.load_stats(),
        solve_stats,
        pointer_variables: points_to.pointer_variables(),
        relations: points_to.relations(),
        compile_time,
        link_time,
        solve_time,
        compile_cache_hits,
        compile_cache_misses,
        snapshot_loaded,
        jobs,
        peak_buffered_units,
        peak_rss_bytes: cla_obs::peak_rss_bytes(),
        slowest_files,
    };
    Ok(Analysis {
        points_to,
        database: db,
        report,
    })
}

/// One compiled input plus its cache bookkeeping.
struct CompiledFile {
    unit: CompiledUnit,
    stats: CompileStats,
    /// Preprocessed-closure hash (0 when no hook asked for keys).
    key: u64,
    cache_hit: bool,
}

/// Compiles one file through the compile cache: preprocess (to key the
/// cache and detect header changes), reuse the stored object on a hit, and
/// compile + store on a miss. A cache entry that fails to open or decode is
/// treated as a miss — the checksummed object reader makes feeding damaged
/// bytes back safe.
fn compile_one_keyed(
    fs: &dyn FileProvider,
    f: &str,
    opts: &PipelineOptions,
    options_fp: u64,
    cache: Option<&dyn CompileCache>,
) -> Result<CompiledFile, CError> {
    let pre = cla_cfront::pp::preprocess(fs, f, &opts.pp)?;
    let key = closure_hash(&pre, f, options_fp);
    if let Some(cache) = cache {
        if let Some(bytes) = cache.load(key) {
            if let Ok(unit) = Database::open(bytes).and_then(|db| db.to_unit()) {
                // The keying preprocess saw the same bytes the original
                // compile did, so the hit's stats match a fresh compile.
                let stats = CompileStats {
                    source_bytes: pre.stats.bytes_in,
                    preprocessed_lines: pre.stats.lines_out,
                    tokens: pre.stats.tokens_out,
                };
                return Ok(CompiledFile {
                    unit,
                    stats,
                    key,
                    cache_hit: true,
                });
            }
        }
    }
    let (unit, stats) = compile_file(fs, f, &opts.pp, &opts.lower)?;
    if let Some(cache) = cache {
        cache.store(key, &write_object(&unit));
    }
    Ok(CompiledFile {
        unit,
        stats,
        key,
        cache_hit: false,
    })
}

/// The result of the streaming compile+link phase: the program is already
/// folded inside `linker`; per-file stats and cache keys ride alongside in
/// input order.
struct StreamedCompile {
    linker: StreamLinker,
    stats: Vec<CompileStats>,
    keys: Vec<u64>,
    /// Wall time each file spent in `one` (compile or cache hit), in
    /// input order — the raw material for `Report::slowest_files`.
    durs: Vec<Duration>,
    cache_hits: usize,
    jobs: usize,
}

/// Compiles every file with `one` and folds each unit into a
/// [`StreamLinker`] as it completes, dropping the unit immediately —
/// compiled units are never collected into a `Vec`, so peak memory is the
/// program under construction plus a bounded reorder window (at most
/// `2 × jobs` units), not the whole codebase.
///
/// Units fold strictly in input order regardless of completion order, so
/// the linked program is byte-identical to a serial compile. Workers take
/// file indices from a shared counter and block (condvar) whenever they
/// would run more than the window ahead of the fold, which is what bounds
/// the buffer.
fn stream_compile_link(
    files: &[&str],
    opts: &PipelineOptions,
    one: impl Fn(&str) -> Result<CompiledFile, CError> + Sync,
) -> Result<StreamedCompile, CError> {
    let mut linker = StreamLinker::new("a.out");
    if !opts.parallel_compile || files.len() < 2 {
        let mut stats = Vec::with_capacity(files.len());
        let mut keys = Vec::with_capacity(files.len());
        let mut durs = Vec::with_capacity(files.len());
        let mut cache_hits = 0usize;
        for (i, f) in files.iter().enumerate() {
            let t = std::time::Instant::now();
            let c = one(f)?;
            durs.push(t.elapsed());
            stats.push(c.stats);
            keys.push(c.key);
            cache_hits += usize::from(c.cache_hit);
            linker.push(i, c.unit);
        }
        return Ok(StreamedCompile {
            linker,
            stats,
            keys,
            durs,
            cache_hits,
            jobs: 1,
        });
    }

    let jobs = effective_jobs(opts.jobs).min(files.len());
    let window = jobs * 2;
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    // Fold progress, shared with the workers for backpressure.
    let progress = Mutex::new(0usize);
    let unblocked = Condvar::new();
    let (tx, rx) = mpsc::channel::<(usize, Duration, Result<CompiledFile, CError>)>();
    let mut slots: Vec<Option<(CompileStats, u64, bool, Duration)>> =
        (0..files.len()).map(|_| None).collect();
    let mut first_err: Option<CError> = None;
    let one = &one;
    let (next, abort, progress, unblocked) = (&next, &abort, &progress, &unblocked);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Relaxed);
                if i >= files.len() || abort.load(Relaxed) {
                    break;
                }
                {
                    let mut folded = progress.lock().unwrap();
                    while i >= *folded + window && !abort.load(Relaxed) {
                        folded = unblocked.wait(folded).unwrap();
                    }
                }
                if abort.load(Relaxed) {
                    break;
                }
                let t = std::time::Instant::now();
                let r = one(files[i]);
                let failed = r.is_err();
                if tx.send((i, t.elapsed(), r)).is_err() {
                    break;
                }
                if failed {
                    abort.store(true, Relaxed);
                    unblocked.notify_all();
                }
            });
        }
        drop(tx);
        for (i, dur, r) in rx {
            match r {
                Ok(c) => {
                    slots[i] = Some((c.stats, c.key, c.cache_hit, dur));
                    linker.push(i, c.unit);
                    let mut folded = progress.lock().unwrap();
                    *folded = linker.folded();
                    drop(folded);
                    unblocked.notify_all();
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
    });
    if let Some(e) = first_err {
        return Err(e);
    }
    let mut stats = Vec::with_capacity(files.len());
    let mut keys = Vec::with_capacity(files.len());
    let mut durs = Vec::with_capacity(files.len());
    let mut cache_hits = 0usize;
    for slot in slots {
        let (s, k, hit, d) = slot.expect("every file compiled");
        stats.push(s);
        keys.push(k);
        durs.push(d);
        cache_hits += usize::from(hit);
    }
    Ok(StreamedCompile {
        linker,
        stats,
        keys,
        durs,
        cache_hits,
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cla_cfront::MemoryFs;

    fn fs_of(files: &[(&str, &str)]) -> MemoryFs {
        let mut fs = MemoryFs::new();
        for (p, c) in files {
            fs.add(*p, *c);
        }
        fs
    }

    #[test]
    fn end_to_end_two_files() {
        let fs = fs_of(&[
            ("a.c", "int target; int *p; void fa(void) { p = &target; }"),
            ("b.c", "extern int *p; int *q; void fb(void) { q = p; }"),
        ]);
        let analysis = analyze(&fs, &["a.c", "b.c"], &PipelineOptions::default()).unwrap();
        let db = &analysis.database;
        let q = db.targets("q")[0];
        let target = db.targets("target")[0];
        assert!(analysis.points_to.may_point_to(q, target));
        let r = &analysis.report;
        assert_eq!(r.files, 2);
        assert!(r.object_size > 0);
        assert!(r.pointer_variables >= 2);
        assert!(r.relations >= 2);
        assert!(r.source_bytes > 0);
        // Per-file attribution: both files ranked, costliest first.
        assert_eq!(r.slowest_files.len(), 2);
        assert!(r.slowest_files[0].1 >= r.slowest_files[1].1);
        assert!(r.slowest_files.iter().any(|(f, _)| f == "a.c"));
    }

    #[test]
    fn parallel_compile_matches_serial() {
        let files: Vec<(String, String)> = (0..8)
            .map(|i| {
                (
                    format!("f{i}.c"),
                    format!("int g{i}; int *p{i}; void fn{i}(void) {{ p{i} = &g{i}; }}"),
                )
            })
            .collect();
        let mut fs = MemoryFs::new();
        for (p, c) in &files {
            fs.add(p.clone(), c.clone());
        }
        let names: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        let serial = analyze(&fs, &names, &PipelineOptions::default()).unwrap();
        let par = analyze(
            &fs,
            &names,
            &PipelineOptions {
                parallel_compile: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial.points_to, par.points_to);
        assert_eq!(serial.report.assign_counts, par.report.assign_counts);
    }

    #[test]
    fn compile_errors_propagate() {
        let fs = fs_of(&[("bad.c", "int x = ;")]);
        assert!(analyze(&fs, &["bad.c"], &PipelineOptions::default()).is_err());
        let fs = fs_of(&[("missing_include.c", "#include \"nope.h\"\n")]);
        assert!(analyze(&fs, &["missing_include.c"], &PipelineOptions::default()).is_err());
    }

    #[test]
    fn report_load_accounting() {
        let fs = fs_of(&[(
            "a.c",
            "int x, *p; void f(void) { p = &x; }
             int i0, i1; void g(void) { i0 = i1; }",
        )]);
        let a = analyze(&fs, &["a.c"], &PipelineOptions::default()).unwrap();
        let ls = a.report.load_stats;
        assert!(ls.assigns_in_file >= 2);
        // The integer-only chain must not be loaded.
        assert!(ls.assigns_loaded < ls.assigns_in_file);
    }
}
