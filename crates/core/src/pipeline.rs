//! The end-to-end compile-link-analyze pipeline.
//!
//! Drives the three CLA phases over a set of source files: parallel
//! per-file compilation (the architecture explicitly supports separate
//! and/or parallel compilation — paper §1), linking into one program
//! database, and demand-driven points-to analysis. Produces the timing and
//! space measurements the paper's Tables 2 and 3 report.

use crate::pretransitive::{solve_database, SolveOptions, SolveStats};
use crate::solution::PointsTo;
use cla_cfront::{CError, FileProvider, PpOptions};
use cla_cladb::{link, write_object, Database, DbError, LinkStats, LoadStats};
use cla_ir::{compile_file, AssignCounts, CompileStats, CompiledUnit, LowerOptions};
use std::fmt;
use std::time::Duration;

/// An error from any phase of the pipeline.
///
/// Compile errors come from the frontend; database errors come from opening
/// the linked object file. The latter were previously treated as impossible
/// (`expect`), but a pipeline whose output goes through a filesystem — or a
/// caller that routes pre-built object bytes here — must surface corruption
/// as a value, not a panic (DESIGN.md §10).
#[derive(Debug)]
pub enum PipelineError {
    /// A frontend (preprocess/parse/lower) error.
    Frontend(CError),
    /// The linked database failed to open or verify.
    Db(DbError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Frontend(e) => write!(f, "{e}"),
            PipelineError::Db(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<CError> for PipelineError {
    fn from(e: CError) -> Self {
        PipelineError::Frontend(e)
    }
}

impl From<DbError> for PipelineError {
    fn from(e: DbError) -> Self {
        PipelineError::Db(e)
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineOptions {
    pub pp: PpOptions,
    pub lower: LowerOptions,
    pub solver: SolveOptions,
    /// Compile source files on a thread pool (one thread per CPU).
    pub parallel_compile: bool,
}

/// Everything measured across one pipeline run (one row of Table 2+3).
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub files: usize,
    /// Bytes of source consumed by the compile phase (after include
    /// expansion — the paper's "LOC preproc." proxy).
    pub source_bytes: u64,
    /// Approximate preprocessed line count.
    pub preprocessed_lines: usize,
    /// Program variables (Table 2).
    pub program_variables: usize,
    /// Counts of the five assignment forms (Table 2).
    pub assign_counts: AssignCounts,
    /// Linked object file size in bytes (Table 2 "object size").
    pub object_size: usize,
    pub link_stats: LinkStats,
    /// Demand-loading counters (Table 3 in-core/loaded/in-file).
    pub load_stats: LoadStats,
    pub solve_stats: SolveStats,
    /// Table 3 "pointer variables".
    pub pointer_variables: usize,
    /// Table 3 "points-to relations".
    pub relations: usize,
    pub compile_time: Duration,
    pub link_time: Duration,
    pub solve_time: Duration,
}

impl Report {
    /// Table 3 "in core": complex assignments retained by the solver.
    pub fn assigns_in_core(&self) -> usize {
        self.solve_stats.complex_in_core
    }

    /// A rough analysis-memory figure: solver structures plus resident
    /// object metadata (the object file itself is demand-paged).
    pub fn approx_analysis_bytes(&self) -> usize {
        self.solve_stats.approx_bytes
    }
}

/// The outcome of a full compile-link-analyze run.
#[derive(Debug)]
pub struct Analysis {
    /// Points-to sets over the linked program's objects.
    pub points_to: PointsTo,
    /// The linked program database (shared with the dependence analysis).
    pub database: Database,
    /// Measurements.
    pub report: Report,
}

/// Compiles `files` from `fs`, links them, writes the program database, and
/// runs the demand-driven pre-transitive solver.
///
/// # Errors
///
/// Returns the first frontend error encountered, or a database error if the
/// freshly linked object file fails to open (which would indicate damage
/// between write and read, or a writer bug — either way a typed error, not
/// a panic).
pub fn analyze(
    fs: &dyn FileProvider,
    files: &[&str],
    opts: &PipelineOptions,
) -> Result<Analysis, PipelineError> {
    // Phase times come from the same spans that emit trace events, so the
    // `Report` and a recorded trace can never disagree about a duration.
    let obs = cla_obs::global();

    let mut sp = obs.span("pipeline", "pipeline.compile");
    sp.set("files", files.len());
    let units = compile_all(fs, files, opts)?;
    let compile_time = sp.finish();

    let mut sp = obs.span("pipeline", "pipeline.link");
    let (mut compiled, stats): (Vec<CompiledUnit>, Vec<CompileStats>) = units.into_iter().unzip();
    let (program, link_stats) = link(&compiled, "a.out");
    compiled.clear();
    let bytes = write_object(&program);
    let object_size = bytes.len();
    let db = Database::open(bytes)?;
    sp.set("object_bytes", object_size);
    let link_time = sp.finish();

    let sp = obs.span("pipeline", "pipeline.solve");
    let (points_to, solve_stats) = solve_database(&db, opts.solver);
    let solve_time = sp.finish();

    let report = Report {
        files: files.len(),
        source_bytes: stats.iter().map(|s| s.source_bytes).sum(),
        preprocessed_lines: stats.iter().map(|s| s.preprocessed_lines).sum(),
        program_variables: program.program_variable_count(),
        assign_counts: program.assign_counts(),
        object_size,
        link_stats,
        load_stats: db.load_stats(),
        solve_stats,
        pointer_variables: points_to.pointer_variables(),
        relations: points_to.relations(),
        compile_time,
        link_time,
        solve_time,
    };
    Ok(Analysis {
        points_to,
        database: db,
        report,
    })
}

/// Compiles every file, optionally in parallel.
fn compile_all(
    fs: &dyn FileProvider,
    files: &[&str],
    opts: &PipelineOptions,
) -> Result<Vec<(CompiledUnit, CompileStats)>, CError> {
    if !opts.parallel_compile || files.len() < 2 {
        return files
            .iter()
            .map(|f| compile_file(fs, f, &opts.pp, &opts.lower))
            .collect();
    }
    let nthreads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(files.len());
    let mut results: Vec<Option<Result<(CompiledUnit, CompileStats), CError>>> =
        (0..files.len()).map(|_| None).collect();
    let chunk = files.len().div_ceil(nthreads);
    std::thread::scope(|scope| {
        for (slot_chunk, file_chunk) in results.chunks_mut(chunk).zip(files.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, f) in slot_chunk.iter_mut().zip(file_chunk) {
                    *slot = Some(compile_file(fs, f, &opts.pp, &opts.lower));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cla_cfront::MemoryFs;

    fn fs_of(files: &[(&str, &str)]) -> MemoryFs {
        let mut fs = MemoryFs::new();
        for (p, c) in files {
            fs.add(*p, *c);
        }
        fs
    }

    #[test]
    fn end_to_end_two_files() {
        let fs = fs_of(&[
            ("a.c", "int target; int *p; void fa(void) { p = &target; }"),
            ("b.c", "extern int *p; int *q; void fb(void) { q = p; }"),
        ]);
        let analysis = analyze(&fs, &["a.c", "b.c"], &PipelineOptions::default()).unwrap();
        let db = &analysis.database;
        let q = db.targets("q")[0];
        let target = db.targets("target")[0];
        assert!(analysis.points_to.may_point_to(q, target));
        let r = &analysis.report;
        assert_eq!(r.files, 2);
        assert!(r.object_size > 0);
        assert!(r.pointer_variables >= 2);
        assert!(r.relations >= 2);
        assert!(r.source_bytes > 0);
    }

    #[test]
    fn parallel_compile_matches_serial() {
        let files: Vec<(String, String)> = (0..8)
            .map(|i| {
                (
                    format!("f{i}.c"),
                    format!("int g{i}; int *p{i}; void fn{i}(void) {{ p{i} = &g{i}; }}"),
                )
            })
            .collect();
        let mut fs = MemoryFs::new();
        for (p, c) in &files {
            fs.add(p.clone(), c.clone());
        }
        let names: Vec<&str> = files.iter().map(|(p, _)| p.as_str()).collect();
        let serial = analyze(&fs, &names, &PipelineOptions::default()).unwrap();
        let par = analyze(
            &fs,
            &names,
            &PipelineOptions {
                parallel_compile: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(serial.points_to, par.points_to);
        assert_eq!(serial.report.assign_counts, par.report.assign_counts);
    }

    #[test]
    fn compile_errors_propagate() {
        let fs = fs_of(&[("bad.c", "int x = ;")]);
        assert!(analyze(&fs, &["bad.c"], &PipelineOptions::default()).is_err());
        let fs = fs_of(&[("missing_include.c", "#include \"nope.h\"\n")]);
        assert!(analyze(&fs, &["missing_include.c"], &PipelineOptions::default()).is_err());
    }

    #[test]
    fn report_load_accounting() {
        let fs = fs_of(&[(
            "a.c",
            "int x, *p; void f(void) { p = &x; }
             int i0, i1; void g(void) { i0 = i1; }",
        )]);
        let a = analyze(&fs, &["a.c"], &PipelineOptions::default()).unwrap();
        let ls = a.report.load_stats;
        assert!(ls.assigns_in_file >= 2);
        // The integer-only chain must not be loaded.
        assert!(ls.assigns_loaded < ls.assigns_in_file);
    }
}
