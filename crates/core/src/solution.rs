//! Points-to analysis results.

use cla_ir::{ObjId, ObjKind, ObjectInfo};

/// Anything that can answer "what may `obj` point to?" — implemented by the
/// materialized [`PointsTo`] solution and by the immutable
/// [`SealedGraph`](crate::SealedGraph) snapshot, so consumers (the
/// dependence analysis, the query server) run unchanged against either.
pub trait PointsToQuery {
    /// The sorted points-to set of `obj` (empty for unknown ids).
    fn pointees(&self, obj: ObjId) -> &[ObjId];
}

/// The result of a points-to analysis: for every object, the set of objects
/// it may point to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointsTo {
    /// Sorted points-to sets, indexed by object id.
    pts: Vec<Vec<ObjId>>,
    /// Which objects count as "program objects" for the paper's metrics
    /// (variables and fields, not analysis-introduced temporaries).
    program: Vec<bool>,
}

impl PointsTo {
    /// Builds a result from per-object sets (sorted and deduplicated here).
    pub fn new(mut pts: Vec<Vec<ObjId>>, objects: &[ObjectInfo]) -> Self {
        for set in &mut pts {
            set.sort_unstable();
            set.dedup();
        }
        let program = objects
            .iter()
            .map(|o| matches!(o.kind, ObjKind::Var | ObjKind::Field))
            .collect();
        PointsTo { pts, program }
    }

    /// The points-to set of `obj` (sorted).
    pub fn points_to(&self, obj: ObjId) -> &[ObjId] {
        self.pts.get(obj.index()).map_or(&[], Vec::as_slice)
    }

    /// True when `p` may point to `target`.
    pub fn may_point_to(&self, p: ObjId, target: ObjId) -> bool {
        self.points_to(p).binary_search(&target).is_ok()
    }

    /// Number of objects tracked.
    pub fn len(&self) -> usize {
        self.pts.len()
    }

    /// True when no object is tracked.
    pub fn is_empty(&self) -> bool {
        self.pts.is_empty()
    }

    /// Table 3 "pointer variables": program objects (variables and fields)
    /// with a non-empty points-to set.
    pub fn pointer_variables(&self) -> usize {
        self.pts
            .iter()
            .zip(&self.program)
            .filter(|(set, is_prog)| **is_prog && !set.is_empty())
            .count()
    }

    /// Table 3 "points-to relations": the total size of the points-to sets
    /// of all program objects.
    pub fn relations(&self) -> usize {
        self.pts
            .iter()
            .zip(&self.program)
            .filter(|(_, is_prog)| **is_prog)
            .map(|(set, _)| set.len())
            .sum()
    }

    /// Total relations over *all* objects (including temporaries), used for
    /// cross-solver equivalence checks.
    pub fn total_relations(&self) -> usize {
        self.pts.iter().map(Vec::len).sum()
    }

    /// Iterates `(object, points-to set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &[ObjId])> {
        self.pts
            .iter()
            .enumerate()
            .map(|(i, set)| (ObjId(i as u32), set.as_slice()))
    }

    /// True when every relation in `self` also holds in `other` (used to
    /// check that a coarser analysis over-approximates a finer one).
    pub fn subsumed_by(&self, other: &PointsTo) -> bool {
        self.iter()
            .all(|(o, set)| set.iter().all(|t| other.may_point_to(o, *t)))
    }
}

impl PointsToQuery for PointsTo {
    fn pointees(&self, obj: ObjId) -> &[ObjId] {
        self.points_to(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cla_ir::SrcLoc;

    fn objs(kinds: &[ObjKind]) -> Vec<ObjectInfo> {
        kinds
            .iter()
            .enumerate()
            .map(|(i, k)| ObjectInfo::local(format!("o{i}"), *k, "int", SrcLoc::NONE))
            .collect()
    }

    #[test]
    fn metrics() {
        let objects = objs(&[ObjKind::Var, ObjKind::Field, ObjKind::Temp, ObjKind::Var]);
        let pts = vec![
            vec![ObjId(3), ObjId(1), ObjId(3)], // sorted+deduped to [1,3]
            vec![ObjId(0)],
            vec![ObjId(0)], // temp: not counted
            vec![],
        ];
        let p = PointsTo::new(pts, &objects);
        assert_eq!(p.points_to(ObjId(0)), &[ObjId(1), ObjId(3)]);
        assert!(p.may_point_to(ObjId(0), ObjId(1)));
        assert!(!p.may_point_to(ObjId(0), ObjId(2)));
        assert_eq!(p.pointer_variables(), 2); // o0 and o1
        assert_eq!(p.relations(), 3); // 2 + 1 + (temp excluded) + 0
        assert_eq!(p.total_relations(), 4);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn subsumption() {
        let objects = objs(&[ObjKind::Var, ObjKind::Var]);
        let fine = PointsTo::new(vec![vec![ObjId(1)], vec![]], &objects);
        let coarse = PointsTo::new(vec![vec![ObjId(0), ObjId(1)], vec![ObjId(0)]], &objects);
        assert!(fine.subsumed_by(&coarse));
        assert!(!coarse.subsumed_by(&fine));
        assert!(fine.subsumed_by(&fine));
    }

    #[test]
    fn out_of_range_is_empty() {
        let p = PointsTo::new(vec![], &[]);
        assert_eq!(p.points_to(ObjId(99)), &[]);
        assert!(p.is_empty());
    }
}
