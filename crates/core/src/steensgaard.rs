//! Baseline: Steensgaard's unification-based points-to analysis
//! (near-linear time, coarser results).
//!
//! Each abstract location lives in a union-find equivalence class; a class
//! carries at most one pointee class and at most one function signature.
//! Every assignment unifies the relevant classes, so the analysis runs in
//! practically linear time but conflates everything that ever flows
//! together (the paper cites Das's measurements of this accuracy/speed
//! trade-off; Section 3 explains why CLA's dependence tool prefers the
//! subset-based approach).

use crate::solution::PointsTo;
use cla_ir::{AssignKind, CompiledUnit, ObjId};
use std::collections::HashMap;

/// Per-run counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct SteensgaardStats {
    /// Class unifications performed.
    pub joins: u64,
    /// Cells allocated (objects + fresh pointee cells).
    pub cells: usize,
}

struct Uf {
    parent: Vec<u32>,
    /// Pointee class of this class, if any.
    pts: Vec<Option<u32>>,
    /// Function signature carried by this class.
    sig: Vec<Option<(Vec<u32>, u32)>>,
    stats: SteensgaardStats,
}

impl Uf {
    fn new(n: usize) -> Uf {
        Uf {
            parent: (0..n as u32).collect(),
            pts: vec![None; n],
            sig: vec![None; n],
            stats: SteensgaardStats::default(),
        }
    }

    fn fresh(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.pts.push(None);
        self.sig.push(None);
        id
    }

    fn find(&mut self, mut c: u32) -> u32 {
        let mut root = c;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        while self.parent[c as usize] != root {
            let next = self.parent[c as usize];
            self.parent[c as usize] = root;
            c = next;
        }
        root
    }

    /// The pointee class of `c`, creating a fresh one on first use.
    fn pts_of(&mut self, c: u32) -> u32 {
        let c = self.find(c);
        if let Some(p) = self.pts[c as usize] {
            return self.find(p);
        }
        let p = self.fresh();
        self.pts[c as usize] = Some(p);
        p
    }

    /// Unifies two classes, merging pointees and signatures recursively
    /// (iteratively, via a pending queue).
    fn join(&mut self, a: u32, b: u32) {
        let mut pending = vec![(a, b)];
        while let Some((a, b)) = pending.pop() {
            let a = self.find(a);
            let b = self.find(b);
            if a == b {
                continue;
            }
            self.stats.joins += 1;
            self.parent[a as usize] = b;
            // Merge pointees.
            match (self.pts[a as usize].take(), self.pts[b as usize]) {
                (Some(pa), Some(pb)) => pending.push((pa, pb)),
                (Some(pa), None) => self.pts[b as usize] = Some(pa),
                (None, _) => {}
            }
            // Merge signatures.
            match (self.sig[a as usize].take(), self.sig[b as usize].clone()) {
                (Some((pa, ra)), Some((pb, rb))) => {
                    for (x, y) in pa.iter().zip(pb.iter()) {
                        pending.push((*x, *y));
                    }
                    pending.push((ra, rb));
                    // Keep the longer parameter list.
                    if pa.len() > pb.len() {
                        self.sig[b as usize] = Some((pa, rb));
                    }
                }
                (Some(sa), None) => self.sig[b as usize] = Some(sa),
                (None, _) => {}
            }
        }
    }
}

/// Runs Steensgaard's analysis over a fully loaded unit.
pub fn solve(unit: &CompiledUnit) -> PointsTo {
    solve_with_stats(unit).0
}

/// Runs Steensgaard's analysis, also returning counters.
pub fn solve_with_stats(unit: &CompiledUnit) -> (PointsTo, SteensgaardStats) {
    let n = unit.objects.len();
    let mut uf = Uf::new(n);

    // Attach direct function signatures before processing assignments so
    // address-taken functions carry them into joined classes.
    for s in &unit.funsigs {
        let params: Vec<u32> = s.params.iter().map(|p| p.0).collect();
        if s.is_indirect {
            // The signature constrains whatever the pointer points at.
            let callee = uf.pts_of(s.obj.0);
            attach_sig(&mut uf, callee, params, s.ret.0);
        } else {
            let c = uf.find(s.obj.0);
            attach_sig(&mut uf, c, params, s.ret.0);
        }
    }

    for a in &unit.assigns {
        let (x, y) = (a.dst.0, a.src.0);
        match a.kind {
            AssignKind::Copy => {
                let px = uf.pts_of(x);
                let py = uf.pts_of(y);
                uf.join(px, py);
            }
            AssignKind::Addr => {
                let px = uf.pts_of(x);
                uf.join(px, y);
            }
            AssignKind::Load => {
                let px = uf.pts_of(x);
                let py = uf.pts_of(y);
                let ppy = uf.pts_of(py);
                uf.join(px, ppy);
            }
            AssignKind::Store => {
                let px = uf.pts_of(x);
                let ppx = uf.pts_of(px);
                let py = uf.pts_of(y);
                uf.join(ppx, py);
            }
            AssignKind::StoreLoad => {
                let px = uf.pts_of(x);
                let ppx = uf.pts_of(px);
                let py = uf.pts_of(y);
                let ppy = uf.pts_of(py);
                uf.join(ppx, ppy);
            }
        }
    }

    // Extraction: pts(x) = all objects whose cell is in the class x points
    // to.
    let mut members: HashMap<u32, Vec<ObjId>> = HashMap::new();
    for o in 0..n as u32 {
        let c = uf.find(o);
        members.entry(c).or_default().push(ObjId(o));
    }
    let mut pts = Vec::with_capacity(n);
    for o in 0..n as u32 {
        let c = uf.find(o);
        let set = match uf.pts[c as usize] {
            Some(p) => {
                let p = uf.find(p);
                members.get(&p).cloned().unwrap_or_default()
            }
            None => Vec::new(),
        };
        pts.push(set);
    }
    uf.stats.cells = uf.parent.len();
    let stats = uf.stats;
    (PointsTo::new(pts, &unit.objects), stats)
}

fn attach_sig(uf: &mut Uf, class: u32, params: Vec<u32>, ret: u32) {
    let c = uf.find(class);
    match uf.sig[c as usize].clone() {
        None => uf.sig[c as usize] = Some((params, ret)),
        Some((have_params, have_ret)) => {
            for (a, b) in have_params.iter().zip(params.iter()) {
                uf.join(*a, *b);
            }
            uf.join(have_ret, ret);
            if params.len() > have_params.len() {
                let c = uf.find(class);
                uf.sig[c as usize] = Some((params, have_ret));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cla_ir::{compile_source, LowerOptions};

    fn unit_of(src: &str) -> CompiledUnit {
        compile_source(src, "t.c", &LowerOptions::default()).unwrap()
    }

    #[test]
    fn basic_address_of() {
        let unit = unit_of("int x, *p; void f(void) { p = &x; }");
        let pts = solve(&unit);
        let p = unit.find_object("p").unwrap();
        let x = unit.find_object("x").unwrap();
        assert!(pts.may_point_to(p, x));
    }

    #[test]
    fn unification_conflates() {
        // p = &x; q = &y; p = q : Andersen keeps pts(q) = {y}, Steensgaard
        // unifies x and y so both p and q point to both.
        let unit = unit_of(
            "int x, y, *p, *q;
             void f(void) { p = &x; q = &y; p = q; }",
        );
        let pts = solve(&unit);
        let (p, q) = (
            unit.find_object("p").unwrap(),
            unit.find_object("q").unwrap(),
        );
        let (x, y) = (
            unit.find_object("x").unwrap(),
            unit.find_object("y").unwrap(),
        );
        assert!(pts.may_point_to(p, x));
        assert!(pts.may_point_to(p, y));
        assert!(pts.may_point_to(q, x));
        assert!(pts.may_point_to(q, y));
    }

    #[test]
    fn indirect_call_sound() {
        let unit = unit_of(
            "int x; int *id(int *a) { return a; } int *(*fp)(int *); int *r;
             void main_(void) { fp = id; r = fp(&x); }",
        );
        let pts = solve(&unit);
        let r = unit.find_object("r").unwrap();
        let x = unit.find_object("x").unwrap();
        assert!(pts.may_point_to(r, x));
    }

    #[test]
    fn stats() {
        let unit = unit_of("int x, *p, *q; void f(void) { p = &x; q = p; }");
        let (_, stats) = solve_with_stats(&unit);
        assert!(stats.joins >= 1);
        assert!(stats.cells >= unit.objects.len());
    }
}
