//! # cla-depend — forward data-dependence analysis
//!
//! The paper's motivating application (Section 2): given a *target* object
//! whose type must change (say `short` → `int`), find every object that can
//! receive values from it — the objects whose types may also need to
//! change to avoid data loss through implicit narrowing conversions.
//!
//! The analysis runs forward over the primitive-assignment database, using
//! the points-to results to resolve stores and loads, and ranks dependents
//! by the *importance* of their best dependence chain: chains made only of
//! shape-preserving operations (Table 1 "strong") outrank chains passing
//! through range-changing ones ("weak"); among equally important chains the
//! shortest wins. User-declared *non-targets* prune the search.
//!
//! ```
//! use cla_ir::{compile_source, LowerOptions};
//! use cla_core::{solve_unit, SolveOptions};
//! use cla_depend::{DependenceAnalysis, DependOptions};
//! use cla_cladb::{write_object, Database};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let unit = compile_source(
//!     "short target, x, y; void f(void) { x = target; y = x; }",
//!     "a.c", &LowerOptions::default())?;
//! let db = Database::open(write_object(&unit))?;
//! let (pts, _) = cla_core::solve_unit(&unit, SolveOptions::default());
//! let dep = DependenceAnalysis::new(&db, &pts);
//! let report = dep.analyze("target", &DependOptions::default()).unwrap();
//! assert_eq!(report.dependents().len(), 2); // x and y
//! # Ok(())
//! # }
//! ```

use cla_cladb::Database;
use cla_core::{PointsTo, PointsToQuery};
use cla_ir::{AssignKind, ObjId, OpKind, SrcLoc, Strength};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::fmt::Write as _;

/// Options controlling a dependence query.
#[derive(Debug, Clone, Default)]
pub struct DependOptions {
    /// Objects (by display name) the user asserts are *not* dependent on
    /// the target; the search will not enter or pass through them
    /// (paper §2's very effective focusing mechanism).
    pub non_targets: Vec<String>,
}

/// Cost of a dependence chain: weak links first, then length.
/// Lower is more important.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChainCost {
    /// Number of weak (range-changing) operations on the chain.
    pub weak_links: u32,
    /// Number of assignments on the chain.
    pub length: u32,
}

impl ChainCost {
    /// The zero cost (the target itself).
    pub const ZERO: ChainCost = ChainCost {
        weak_links: 0,
        length: 0,
    };

    fn step(self, s: Strength) -> ChainCost {
        ChainCost {
            weak_links: self.weak_links + u32::from(s == Strength::Weak),
            length: self.length + 1,
        }
    }

    /// The composite strength of a chain with this cost.
    pub fn strength(&self) -> Strength {
        if self.weak_links == 0 {
            Strength::Strong
        } else {
            Strength::Weak
        }
    }
}

/// One dependent object with the quality of its best chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dependent {
    pub obj: ObjId,
    pub cost: ChainCost,
}

/// One step of a rendered dependence chain.
#[derive(Debug, Clone, Copy)]
pub struct ChainStep {
    /// The object receiving the value at this step.
    pub obj: ObjId,
    /// The assignment that carried it (None for the chain's start).
    pub via: Option<EdgeInfo>,
}

/// The assignment behind one dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeInfo {
    pub strength: Strength,
    pub op: OpKind,
    pub loc: SrcLoc,
}

/// The result of one dependence query.
#[derive(Debug)]
pub struct DependReport {
    /// The target objects (several when the name is ambiguous).
    pub targets: Vec<ObjId>,
    dependents: Vec<Dependent>,
    /// Best-chain predecessor: obj -> (source obj, edge).
    parents: HashMap<ObjId, (ObjId, EdgeInfo)>,
}

impl DependReport {
    /// Dependents sorted by priority: strong short chains first
    /// (paper §2's prioritization for sifting large result sets).
    pub fn dependents(&self) -> &[Dependent] {
        &self.dependents
    }

    /// The best dependence chain from `obj` back to a target, starting at
    /// `obj`.
    pub fn chain(&self, obj: ObjId) -> Vec<ChainStep> {
        let mut steps = Vec::new();
        let mut cur = obj;
        let mut via = None;
        let mut guard = 0;
        loop {
            steps.push(ChainStep { obj: cur, via });
            match self.parents.get(&cur) {
                Some(&(src, edge)) => {
                    via = Some(edge);
                    cur = src;
                }
                None => break,
            }
            guard += 1;
            assert!(guard <= self.parents.len() + 1, "cycle in chain parents");
        }
        steps
    }
}

/// Forward dependence analysis over a program database + points-to result.
///
/// Generic over the points-to source: a materialized [`PointsTo`] (the
/// default, as produced by the batch solvers) or any other
/// [`PointsToQuery`] implementor such as the immutable
/// [`SealedGraph`](cla_core::SealedGraph) a query server keeps resident —
/// the traversal itself never mutates, so running it against a shared
/// snapshot parallelizes across threads.
#[derive(Debug)]
pub struct DependenceAnalysis<'a, P = PointsTo> {
    db: &'a Database,
    pts: &'a P,
}

impl<'a, P: PointsToQuery> DependenceAnalysis<'a, P> {
    /// Creates an analysis over a linked database and its points-to result.
    pub fn new(db: &'a Database, pts: &'a P) -> Self {
        DependenceAnalysis { db, pts }
    }

    /// Runs a dependence query for every object named `target_name`
    /// (resolved through the database's target section). Returns `None`
    /// when the name matches nothing.
    pub fn analyze(&self, target_name: &str, opts: &DependOptions) -> Option<DependReport> {
        let targets: Vec<ObjId> = self.db.targets(target_name).to_vec();
        if targets.is_empty() {
            return None;
        }
        Some(self.analyze_objects(&targets, opts))
    }

    /// Runs a dependence query from explicit target objects.
    pub fn analyze_objects(&self, targets: &[ObjId], opts: &DependOptions) -> DependReport {
        let blocked: HashSet<ObjId> = opts
            .non_targets
            .iter()
            .flat_map(|n| self.db.targets(n).iter().copied())
            .collect();

        // Overlay edges from loads (x = *q gives w -> x for w in pts(q))
        // and store-loads (*p = *q gives w -> v for w in pts(q), v in
        // pts(p)). Store edges (z -> pts(p) for *p = z) are discovered from
        // z's demand-loaded block.
        let mut overlay: HashMap<ObjId, Vec<(ObjId, EdgeInfo)>> = HashMap::new();
        for i in 0..self.db.objects().len() {
            let src = ObjId(i as u32);
            if self.db.block_len(src) == 0 {
                continue;
            }
            for a in self.db.block(src).expect("valid database") {
                let edge = EdgeInfo {
                    strength: a.strength,
                    op: a.op,
                    loc: a.loc,
                };
                match a.kind {
                    AssignKind::Load => {
                        for &w in self.pts.pointees(a.src) {
                            overlay.entry(w).or_default().push((a.dst, edge));
                        }
                    }
                    AssignKind::StoreLoad => {
                        for &w in self.pts.pointees(a.src) {
                            for &v in self.pts.pointees(a.dst) {
                                overlay.entry(w).or_default().push((v, edge));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }

        // Dijkstra with lexicographic (weak links, length) cost.
        let mut best: HashMap<ObjId, ChainCost> = HashMap::new();
        let mut parents: HashMap<ObjId, (ObjId, EdgeInfo)> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(ChainCost, ObjId)>> = BinaryHeap::new();
        for &t in targets {
            if blocked.contains(&t) {
                continue;
            }
            best.insert(t, ChainCost::ZERO);
            heap.push(Reverse((ChainCost::ZERO, t)));
        }
        while let Some(Reverse((cost, o))) = heap.pop() {
            if best.get(&o).is_some_and(|&c| c < cost) {
                continue; // stale heap entry
            }
            let relax =
                |dst: ObjId,
                 edge: EdgeInfo,
                 best: &mut HashMap<ObjId, ChainCost>,
                 parents: &mut HashMap<ObjId, (ObjId, EdgeInfo)>,
                 heap: &mut BinaryHeap<Reverse<(ChainCost, ObjId)>>| {
                    if blocked.contains(&dst) {
                        return;
                    }
                    let next = cost.step(edge.strength);
                    if best.get(&dst).is_none_or(|&c| next < c) {
                        best.insert(dst, next);
                        parents.insert(dst, (o, edge));
                        heap.push(Reverse((next, dst)));
                    }
                };
            // Demand-loaded forward edges: the block for o holds every
            // assignment whose source is o (paper §4's dependence walk).
            for a in self.db.block(o).expect("valid database") {
                let edge = EdgeInfo {
                    strength: a.strength,
                    op: a.op,
                    loc: a.loc,
                };
                match a.kind {
                    AssignKind::Copy => relax(a.dst, edge, &mut best, &mut parents, &mut heap),
                    AssignKind::Store => {
                        for &v in self.pts.pointees(a.dst) {
                            relax(v, edge, &mut best, &mut parents, &mut heap);
                        }
                    }
                    // Loads/store-loads from o read o's *pointees*, not o.
                    AssignKind::Load | AssignKind::StoreLoad | AssignKind::Addr => {}
                }
            }
            if let Some(out) = overlay.get(&o) {
                for &(dst, edge) in out {
                    relax(dst, edge, &mut best, &mut parents, &mut heap);
                }
            }
        }

        let target_set: HashSet<ObjId> = targets.iter().copied().collect();
        let mut dependents: Vec<Dependent> = best
            .iter()
            .filter(|(o, _)| !target_set.contains(o))
            .map(|(&obj, &cost)| Dependent { obj, cost })
            .collect();
        dependents.sort_by(|a, b| {
            (a.cost, &self.db.object(a.obj).name).cmp(&(b.cost, &self.db.object(b.obj).name))
        });
        DependReport {
            targets: targets.to_vec(),
            dependents,
            parents,
        }
    }

    /// Renders the best chain for `obj` in the paper's Figure 1 style:
    ///
    /// ```text
    /// w/short <eg1.c:3> -> u/short <eg1.c:7> -> target/short <eg1.c:6>
    ///   where target/short <eg1.c:1>
    /// ```
    ///
    /// The first element shows the dependent with its declaration site; each
    /// later element shows the value's source with the location of the
    /// assignment that carried it; the `where` clause gives the target's
    /// declaration.
    pub fn render_chain(&self, report: &DependReport, obj: ObjId) -> String {
        let files = self.db.files();
        let mut out = String::new();
        let steps = report.chain(obj);
        for (i, step) in steps.iter().enumerate() {
            let info = self.db.object(step.obj);
            // The first element shows the dependent's declaration site; each
            // later element shows the location of the assignment that
            // carried its value into the previous element.
            let loc = match step.via {
                Some(edge) if i > 0 => edge.loc,
                _ => info.loc,
            };
            if i > 0 {
                out.push_str(" -> ");
            }
            let _ = write!(out, "{}/{} <{}>", info.name, info.ty, files.display(loc));
        }
        if let Some(last) = steps.last() {
            let info = self.db.object(last.obj);
            let _ = write!(
                out,
                " where {}/{} <{}>",
                info.name,
                info.ty,
                files.display(info.loc)
            );
        }
        out
    }

    /// Renders the report as the *tree of chains* the paper's GUI browses
    /// (§2): the target at the root, each dependent under the object its
    /// value came through.
    ///
    /// The best-chain parents form a forest rooted at the targets, so every
    /// dependent appears exactly once, at the position of its most important
    /// chain.
    pub fn render_tree(&self, report: &DependReport) -> String {
        use std::collections::HashMap as Map;
        let mut children: Map<ObjId, Vec<ObjId>> = Map::new();
        for d in report.dependents() {
            if let Some(&(src, _)) = report.parents.get(&d.obj) {
                children.entry(src).or_default().push(d.obj);
            }
        }
        for v in children.values_mut() {
            v.sort_by_key(|o| self.db.object(*o).name.clone());
        }
        let mut out = String::new();
        for &t in &report.targets {
            self.render_subtree(report, &children, t, 0, &mut out);
        }
        out
    }

    fn render_subtree(
        &self,
        report: &DependReport,
        children: &std::collections::HashMap<ObjId, Vec<ObjId>>,
        node: ObjId,
        depth: usize,
        out: &mut String,
    ) {
        let info = self.db.object(node);
        let files = self.db.files();
        let indent = "  ".repeat(depth);
        let via = report
            .parents
            .get(&node)
            .map(|(_, e)| format!(" [{} {} @ {}]", e.strength, e.op, files.display(e.loc)))
            .unwrap_or_default();
        let _ = writeln!(out, "{indent}{}/{}{via}", info.name, info.ty);
        if let Some(kids) = children.get(&node) {
            for &k in kids {
                self.render_subtree(report, children, k, depth + 1, out);
            }
        }
    }

    /// Renders the whole report: one prioritized line per dependent.
    pub fn render_report(&self, report: &DependReport) -> String {
        let mut out = String::new();
        for d in report.dependents() {
            let _ = writeln!(
                out,
                "[{} w={} len={}] {}",
                d.cost.strength(),
                d.cost.weak_links,
                d.cost.length,
                self.render_chain(report, d.obj)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cla_cladb::write_object;
    use cla_core::{solve_unit, SolveOptions};
    use cla_ir::{compile_source, CompiledUnit, LowerOptions};

    struct Ctx {
        unit: CompiledUnit,
        db: Database,
        pts: PointsTo,
    }

    fn ctx(src: &str) -> Ctx {
        let unit = compile_source(src, "eg1.c", &LowerOptions::default()).unwrap();
        let db = Database::open(write_object(&unit)).unwrap();
        let (pts, _) = solve_unit(&unit, SolveOptions::default());
        Ctx { unit, db, pts }
    }

    fn names(c: &Ctx, report: &DependReport) -> Vec<String> {
        report
            .dependents()
            .iter()
            .map(|d| c.db.object(d.obj).name.clone())
            .collect()
    }

    #[test]
    fn simple_forward_chain() {
        // Paper §2's first example.
        let c = ctx("short x, y, z, *p, v, w;
             void f(void) {
               y = x;
               z = y + 1;
               p = &v;
               *p = z;
               w = 1;
             }");
        let dep = DependenceAnalysis::new(&c.db, &c.pts);
        let report = dep.analyze("x", &DependOptions::default()).unwrap();
        let ns = names(&c, &report);
        assert!(ns.contains(&"y".to_string()), "{ns:?}");
        assert!(ns.contains(&"z".to_string()));
        assert!(ns.contains(&"v".to_string()), "v via *p: {ns:?}");
        assert!(!ns.contains(&"w".to_string()), "w = 1 is unrelated: {ns:?}");
        assert!(
            !ns.contains(&"p".to_string()),
            "p holds an address, not the value: {ns:?}"
        );
    }

    #[test]
    fn figure1_struct_example() {
        let c = ctx("short target;
             struct S { short x; short y; };
             short u, *v, w;
             struct S s, t;
             void f(void) {
               v = &w;
               u = target;
               *v = u;
               s.x = w;
             }");
        let dep = DependenceAnalysis::new(&c.db, &c.pts);
        let report = dep.analyze("target", &DependOptions::default()).unwrap();
        let ns = names(&c, &report);
        // Paper: u, w and s.x (the field object S.x) are all dependent.
        assert!(ns.contains(&"u".to_string()), "{ns:?}");
        assert!(ns.contains(&"w".to_string()), "{ns:?}");
        assert!(ns.contains(&"S.x".to_string()), "{ns:?}");
        assert!(!ns.contains(&"S.y".to_string()), "{ns:?}");

        // Chain rendering for w matches Figure 1's shape.
        let w = c.unit.find_object("w").unwrap();
        let chain = dep.render_chain(&report, w);
        assert!(chain.starts_with("w/short <eg1.c:"), "{chain}");
        assert!(chain.contains("u/short"), "{chain}");
        assert!(chain.contains("target/short"), "{chain}");
        assert!(chain.contains("where target/short <eg1.c:1>"), "{chain}");
    }

    #[test]
    fn weak_chains_rank_below_strong() {
        let c = ctx("int t, a, b;
             void f(void) { a = t; b = t >> 2; }");
        let dep = DependenceAnalysis::new(&c.db, &c.pts);
        let report = dep.analyze("t", &DependOptions::default()).unwrap();
        let deps = report.dependents();
        assert_eq!(c.db.object(deps[0].obj).name, "a");
        assert_eq!(deps[0].cost.strength(), Strength::Strong);
        assert_eq!(c.db.object(deps[1].obj).name, "b");
        assert_eq!(deps[1].cost.strength(), Strength::Weak);
        assert_eq!(deps[1].cost.weak_links, 1);
    }

    #[test]
    fn prefers_strong_path_over_short_weak_one() {
        // Two routes from t to d: direct but weak (via *), or long but
        // strong. The strong one must win.
        let c = ctx("int t, m1, m2, d;
             void f(void) {
               d = t * 3;
               m1 = t;
               m2 = m1;
               d = m2;
             }");
        let dep = DependenceAnalysis::new(&c.db, &c.pts);
        let report = dep.analyze("t", &DependOptions::default()).unwrap();
        let d = c.unit.find_object("d").unwrap();
        let found = report.dependents().iter().find(|x| x.obj == d).unwrap();
        assert_eq!(found.cost.weak_links, 0);
        assert_eq!(found.cost.length, 3);
    }

    #[test]
    fn non_targets_prune() {
        let c = ctx("int t, hub, a, b;
             void f(void) { hub = t; a = hub; b = t; }");
        let dep = DependenceAnalysis::new(&c.db, &c.pts);
        let all = dep.analyze("t", &DependOptions::default()).unwrap();
        assert!(names(&c, &all).contains(&"a".to_string()));
        let pruned = dep
            .analyze(
                "t",
                &DependOptions {
                    non_targets: vec!["hub".to_string()],
                },
            )
            .unwrap();
        let ns = names(&c, &pruned);
        assert!(!ns.contains(&"hub".to_string()), "{ns:?}");
        assert!(
            !ns.contains(&"a".to_string()),
            "a is only reachable through hub: {ns:?}"
        );
        assert!(ns.contains(&"b".to_string()));
    }

    #[test]
    fn flows_through_calls() {
        let c = ctx("short t;
             short id(short v) { return v; }
             short r;
             void main_(void) { r = id(t); }");
        let dep = DependenceAnalysis::new(&c.db, &c.pts);
        let report = dep.analyze("t", &DependOptions::default()).unwrap();
        let ns = names(&c, &report);
        assert!(ns.contains(&"v".to_string()), "{ns:?}");
        assert!(ns.contains(&"r".to_string()), "{ns:?}");
    }

    #[test]
    fn flows_through_heap() {
        let c = ctx("void *malloc(unsigned long);
             int t, out; int *p, *q;
             void f(void) { p = malloc(4); q = p; *p = t; out = *q; }");
        let dep = DependenceAnalysis::new(&c.db, &c.pts);
        let report = dep.analyze("t", &DependOptions::default()).unwrap();
        let ns = names(&c, &report);
        assert!(ns.contains(&"out".to_string()), "{ns:?}");
    }

    #[test]
    fn unknown_target_is_none() {
        let c = ctx("int x;");
        let dep = DependenceAnalysis::new(&c.db, &c.pts);
        assert!(dep.analyze("nothing", &DependOptions::default()).is_none());
    }

    #[test]
    fn sealed_snapshot_gives_identical_reports() {
        // The server runs the dependence walk against a SealedGraph instead
        // of a materialized PointsTo; both must produce the same report.
        let c = ctx("void *malloc(unsigned long);
             short t, u, w, out; int *p, *q;
             void f(void) { u = t; w = u >> 1; p = malloc(4); q = p; *p = u; out = *q; }");
        let sealed = cla_core::Warm::from_database(&c.db, SolveOptions::default()).seal();
        let from_pts = DependenceAnalysis::new(&c.db, &c.pts);
        let from_sealed = DependenceAnalysis::new(&c.db, &sealed);
        for non_targets in [vec![], vec!["u".to_string()]] {
            let opts = DependOptions { non_targets };
            let a = from_pts.analyze("t", &opts).unwrap();
            let b = from_sealed.analyze("t", &opts).unwrap();
            assert_eq!(a.dependents(), b.dependents(), "opts {opts:?}");
            assert_eq!(
                from_pts.render_report(&a),
                from_sealed.render_report(&b),
                "rendered chains diverged for {opts:?}"
            );
        }
    }

    #[test]
    fn tree_renders() {
        let c = ctx("short target;
             short u, w, x;
             void f(void) { u = target; w = u; x = target >> 1; }");
        let dep = DependenceAnalysis::new(&c.db, &c.pts);
        let report = dep.analyze("target", &DependOptions::default()).unwrap();
        let tree = dep.render_tree(&report);
        let lines: Vec<&str> = tree.lines().collect();
        assert!(lines[0].starts_with("target/short"), "{tree}");
        // u and x are direct children (indented once); w sits under u.
        assert!(lines.iter().any(|l| l.starts_with("  u/short")), "{tree}");
        assert!(
            lines.iter().any(|l| l.starts_with("  x/short [weak")),
            "{tree}"
        );
        assert!(lines.iter().any(|l| l.starts_with("    w/short")), "{tree}");
    }

    #[test]
    fn report_renders() {
        let c = ctx("int t, a; void f(void) { a = t + 1; }");
        let dep = DependenceAnalysis::new(&c.db, &c.pts);
        let report = dep.analyze("t", &DependOptions::default()).unwrap();
        let text = dep.render_report(&report);
        assert!(text.contains("a/int"), "{text}");
        assert!(text.contains("strong"), "{text}");
    }
}
