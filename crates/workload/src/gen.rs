//! The synthetic C generator.
//!
//! Emits a multi-file C code base whose lowered primitive-assignment counts
//! approximate a [`BenchSpec`] (one row of Table 2), with the structural
//! features the solvers care about: pointer chains and *cycles* (the paper's
//! cycle elimination is essential on real code), join points, struct field
//! traffic, cross-file globals resolved by the linker, direct calls through
//! shared prototypes, and indirect calls through function-pointer globals.

use crate::profiles::BenchSpec;
use crate::rng::SplitMix64;
use std::fmt::Write as _;

/// Generator options.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Scale factor applied to every count in the spec (1.0 = paper size).
    pub scale: f64,
    /// Number of `.c` files to spread the program over.
    pub files: usize,
    /// RNG seed (generation is fully deterministic given the seed).
    pub seed: u64,
    /// Fraction of copy assignments that are integer-to-integer (irrelevant
    /// to the points-to solver; exercises demand loading). `None` calibrates
    /// it from the benchmark's Table 3 loaded/in-file ratio.
    pub int_copy_fraction: Option<f64>,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            scale: 1.0,
            files: 16,
            seed: 0xC1A,
            int_copy_fraction: None,
        }
    }
}

impl GenOptions {
    /// Convenience: options at a given scale.
    pub fn at_scale(scale: f64) -> Self {
        GenOptions {
            scale,
            ..Default::default()
        }
    }
}

/// A generated code base.
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: String,
    /// `(path, contents)` pairs; the first entry is the shared header.
    pub files: Vec<(String, String)>,
}

impl Workload {
    /// The `.c` file paths (excluding headers), in order.
    pub fn source_files(&self) -> Vec<&str> {
        self.files
            .iter()
            .map(|(p, _)| p.as_str())
            .filter(|p| p.ends_with(".c"))
            .collect()
    }

    /// Total bytes of all files.
    pub fn total_bytes(&self) -> usize {
        self.files.iter().map(|(_, c)| c.len()).sum()
    }

    /// Total non-blank source lines.
    pub fn total_lines(&self) -> usize {
        self.files
            .iter()
            .map(|(_, c)| c.lines().filter(|l| !l.trim().is_empty()).count())
            .sum()
    }
}

/// Per-file variable pools.
#[derive(Debug, Default, Clone)]
struct Pool {
    ints: Vec<String>,
    ptrs: Vec<String>,
    pptrs: Vec<String>,
    /// Struct instances with their type-tag index.
    structs: Vec<(String, usize)>,
}

struct Gen {
    rng: SplitMix64,
    files: usize,
    /// Pools: index 0 = shared (header), 1..=files = per-file.
    pools: Vec<Pool>,
    /// Struct type tags and their pointer/int field names.
    struct_tags: Vec<String>,
    /// Identity-style functions `int *fid_k(int *)` (owner file, name).
    fids: Vec<(usize, String)>,
    /// Function-pointer globals (shared).
    fptrs: Vec<String>,
    /// Statements destined for each file.
    stmts: Vec<Vec<String>>,
    /// Struct-pointer globals: (pool scope, tag) -> name. One per scope and
    /// tag, created on demand; accesses through them are what separates the
    /// field-based and field-independent models.
    sptrs: std::collections::HashMap<(usize, usize), String>,
    /// The first `identity_count` fids are identity functions (join
    /// points); the budget scales with cluster count to stay below directed
    /// percolation.
    identity_count: usize,
    /// Remaining cross-cluster bridge budget (scales with cluster count,
    /// not statement count, to stay below directed percolation).
    bridges_left: usize,
    /// Per-field-object spoke budget and counters (keyed by instance
    /// variable + field, a close proxy for the field object).
    field_spoke_cap: usize,
    field_spokes: std::collections::HashMap<(String, usize), usize>,
    /// Size of the pointer window associated with each pointer-to-pointer
    /// variable (how many distinct pointers a `**` cell can designate).
    assoc_window: usize,
    /// Cluster size for copy locality.
    cluster: usize,
    /// Remaining struct-field copy budget (cluster-scaled: field objects
    /// are global join points under the field-based model).
    field_edges_left: usize,
}

const FIELDS_INT: [&str; 2] = ["fi0", "fi1"];
const FIELDS_PTR: [&str; 2] = ["fp0", "fp1"];

impl Gen {
    /// Picks a variable usable from `file`: its own pool or the shared pool.
    /// Biased 3:1 toward file-local variables — real code bases have strong
    /// locality, and uniform picking over the (large) shared pool would
    /// produce far more join-point conflation than the paper's benchmarks.
    fn pick(&mut self, file: usize, which: fn(&Pool) -> &Vec<String>) -> Option<&str> {
        let shared_len = which(&self.pools[0]).len();
        let local_len = which(&self.pools[file + 1]).len();
        if shared_len + local_len == 0 {
            return None;
        }
        let use_local = local_len > 0 && (shared_len == 0 || self.rng.random_range(0..4) < 3);
        let (pool, len) = if use_local {
            (file + 1, local_len)
        } else {
            (0, shared_len)
        };
        let ix = self.rng.random_range(0..len);
        Some(&which(&self.pools[pool])[ix])
    }

    fn pick2(
        &mut self,
        file: usize,
        a: fn(&Pool) -> &Vec<String>,
        b: fn(&Pool) -> &Vec<String>,
    ) -> Option<(String, String)> {
        let x = self.pick(file, a)?.to_string();
        let y = self.pick(file, b)?.to_string();
        Some((x, y))
    }

    fn emit(&mut self, file: usize, stmt: String) {
        self.stmts[file].push(stmt);
    }

    /// Picks two distinct variables from the same small *cluster* of a pool.
    /// Value flow in real code is clustered (a handful of variables per data
    /// structure or module); unconstrained random copies would union the
    /// whole program's points-to sets together. 3% of picks bridge two
    /// clusters.
    fn pick_cluster_pair(
        &mut self,
        file: usize,
        which: fn(&Pool) -> &Vec<String>,
    ) -> Option<(String, String)> {
        let cluster = self.cluster;
        let pool_ix = {
            let local_len = which(&self.pools[file + 1]).len();
            if local_len >= 2 && self.rng.random_range(0..4) < 3 {
                file + 1
            } else {
                0
            }
        };
        let len = which(&self.pools[pool_ix]).len();
        if len < 2 {
            return None;
        }
        let n_clusters = len.div_ceil(cluster);
        let c = self.rng.random_range(0..n_clusters);
        let lo = c * cluster;
        let hi = ((c + 1) * cluster).min(len);
        if hi - lo < 2 {
            return None;
        }
        let i = lo + self.rng.random_range(0..hi - lo);
        let mut j = lo + self.rng.random_range(0..hi - lo);
        // Rare cross-cluster bridge, from a fixed budget.
        if self.bridges_left > 0 && self.rng.random_range(0..100) < 20 {
            self.bridges_left -= 1;
            j = self.rng.random_range(0..len);
        }
        if i == j {
            return None;
        }
        let pool = which(&self.pools[pool_ix]);
        Some((pool[i].clone(), pool[j].clone()))
    }

    fn random_file(&mut self) -> usize {
        self.rng.random_range(0..self.files)
    }

    /// Picks a struct instance usable from `file`, returning
    /// `(scope, name, tag)`.
    fn pick_struct(&mut self, file: usize) -> Option<(usize, String, usize)> {
        let shared_len = self.pools[0].structs.len();
        let local_len = self.pools[file + 1].structs.len();
        if shared_len + local_len == 0 {
            return None;
        }
        let use_local = local_len > 0 && (shared_len == 0 || self.rng.random_range(0..4) < 3);
        let (scope, len) = if use_local {
            (file + 1, local_len)
        } else {
            (0, shared_len)
        };
        let ix = self.rng.random_range(0..len);
        let (name, tag) = self.pools[scope].structs[ix].clone();
        Some((scope, name, tag))
    }

    /// Picks a pointer from the slot associated with a struct *type*: all
    /// payload traffic of one type stays in one pointer neighbourhood, so
    /// heavy struct traffic cannot percolate the field-based graph (while
    /// still conflating freely under the field-independent model).
    fn pick_ptr_for_tag(&mut self, scope: usize, tag: usize) -> Option<String> {
        let ps = &self.pools[scope].ptrs;
        if ps.is_empty() {
            return None;
        }
        let w = self.assoc_window.min(ps.len()).max(1);
        let align = self.cluster.max(w);
        let n_slots = (ps.len() / align).max(1);
        let start = ((tag * 2_654_435_761usize) % n_slots) * align;
        let pi = start + self.rng.random_range(0..w.min(ps.len() - start));
        Some(ps[pi.min(ps.len() - 1)].clone())
    }

    /// The struct-pointer global for `(scope, tag)`, created on first use.
    fn sptr_for(&mut self, scope: usize, tag: usize) -> String {
        self.sptrs
            .entry((scope, tag))
            .or_insert_with(|| {
                if scope == 0 {
                    format!("gsp{tag}")
                } else {
                    format!("sp{}_{tag}", scope - 1)
                }
            })
            .clone()
    }

    /// Picks a pointer-to-pointer variable together with a pointer from its
    /// *associated window*. All `q = &p`, `*q = p` and `p = *q` traffic for
    /// a given `q` stays inside that window: in real code the pointers
    /// stored through a given cell belong to one data structure, and
    /// decorrelated picks would wire random clusters together and conflate
    /// the whole program.
    fn pick_assoc(&mut self, file: usize, parity: Option<usize>) -> Option<(String, String)> {
        let pool_ix = {
            let local_ok =
                !self.pools[file + 1].pptrs.is_empty() && !self.pools[file + 1].ptrs.is_empty();
            if local_ok && self.rng.random_range(0..4) < 3 {
                file + 1
            } else {
                0
            }
        };
        let qs = &self.pools[pool_ix].pptrs;
        let ps = &self.pools[pool_ix].ptrs;
        if qs.is_empty() || ps.is_empty() {
            return None;
        }
        let mut qi = self.rng.random_range(0..qs.len());
        // In low-conflation tiers, cells written through (`*q = p`) and
        // cells read through (`p = *q`) are disjoint populations: the
        // write-then-read relay through one cell is the strongest
        // conflation amplifier, and sparse code bases show little of it.
        if let Some(par) = parity {
            if qs.len() > 1 && qi % 2 != par {
                qi = (qi + 1) % qs.len();
            }
        }
        let w = self.assoc_window.min(ps.len()).max(1);
        // Windows are aligned to copy-cluster boundaries: a window that
        // straddled two clusters would stitch them together and chain the
        // whole pool into one conflated region.
        let align = self.cluster.max(w);
        let n_slots = (ps.len() / align).max(1);
        // All pointer cells of one q-cluster share one window: q-q copies
        // then merge identical windows instead of stitching distinct ones.
        let q_group = qi / self.cluster.max(1);
        let start = ((q_group * 2_654_435_761usize) % n_slots) * align;
        let pi = start + self.rng.random_range(0..w.min(ps.len() - start));
        Some((qs[qi].clone(), ps[pi.min(ps.len() - 1)].clone()))
    }
}

/// Generates a code base approximating `spec` at the given options.
pub fn generate(spec: &BenchSpec, opts: &GenOptions) -> Workload {
    let sc = |v: u32| -> usize { ((f64::from(v) * opts.scale).round() as usize).max(1) };
    let n_files = opts.files.max(1);
    let variables = sc(spec.variables);
    let n_copy = sc(spec.copy);
    let n_addr = sc(spec.addr);
    let n_store = sc(spec.store);
    let n_sl = sc(spec.store_load);
    let n_load = sc(spec.load);

    // Conflation tiers calibrated to the paper's measured average
    // points-to set size (Table 3 relations / pointer variables): gcc-like
    // code is sparse (avg ~11), emacs-like is join-heavy (avg ~1400).
    let avg_target = spec.target_avg_pts();
    #[allow(clippy::type_complexity)]
    let (
        ident_density,
        identity_site_cap,
        fptr_site_cap,
        bridge_density,
        assoc_window,
        cluster,
        field_density,
        field_spoke_cap,
        pptr_copy_pct,
        cycle_pct,
        split_sl,
        struct_pct,
    ): (
        f64,
        usize,
        usize,
        f64,
        usize,
        usize,
        f64,
        usize,
        u32,
        u32,
        bool,
        u32,
    ) = if avg_target < 30.0 {
        // nethack, gcc, povray: shallow, local pointer flow.
        (0.05, 1, 1, 0.1, 4, 8, 0.5, 4, 2, 1, true, 8)
    } else if avg_target < 120.0 {
        // burlap, vortex: moderate conflation.
        (0.15, 2, 2, 0.5, 16, 24, 2.0, 8, 4, 1, true, 18)
    } else if avg_target < 400.0 {
        // lucent, gimp: substantial join points and heavy struct use.
        (0.2, 3, 3, 0.5, 48, 64, 1.5, 8, 8, 2, false, 20)
    } else {
        // emacs: points-to sets blow up (the paper measures an
        // average of ~1400).
        (0.8, 8, 5, 1.2, 128, 128, 3.0, 16, 15, 2, false, 25)
    };
    let mut g = Gen {
        rng: SplitMix64::seed_from_u64(opts.seed ^ spec.name.len() as u64),
        files: n_files,
        pools: vec![Pool::default(); n_files + 1],
        struct_tags: Vec::new(),
        fids: Vec::new(),
        fptrs: Vec::new(),
        stmts: vec![Vec::new(); n_files],
        sptrs: std::collections::HashMap::new(),
        identity_count: 0, // set below, once pool sizes are known
        bridges_left: 0,   // likewise
        field_edges_left: 0,
        field_spoke_cap,
        field_spokes: std::collections::HashMap::new(),
        assoc_window,
        cluster,
    };

    // ---- variable pools ------------------------------------------------
    // Budget split; functions and struct fields also count as program
    // variables, so carve them out of the total.
    let n_fids = (variables / 40).clamp(2, 4000);
    let n_fptrs = (n_fids / 3).max(1);
    let n_struct_types = (variables / 60).clamp(1, 4000);
    let field_vars = n_struct_types * (FIELDS_INT.len() + FIELDS_PTR.len());
    let pool_budget = variables
        .saturating_sub(n_fids + n_fptrs + field_vars)
        .max(8);
    let n_ints = pool_budget * 45 / 100;
    let n_ptrs = pool_budget * 30 / 100;
    let n_pptrs = pool_budget * 15 / 100;
    let n_structs = pool_budget - n_ints - n_ptrs - n_pptrs;

    for t in 0..n_struct_types {
        g.struct_tags.push(format!("T{t}"));
    }
    // ~30% of scalars live in the shared header pool; the rest are spread
    // over the files.
    let distribute =
        |count: usize, prefix: &str, which: fn(&mut Pool) -> &mut Vec<String>, g: &mut Gen| {
            for k in 0..count {
                let shared = k % 10 < 3;
                let pool_ix = if shared {
                    0
                } else {
                    g.rng.random_range(0..n_files) + 1
                };
                let name = if shared {
                    format!("g{prefix}{k}")
                } else {
                    format!("{prefix}{}_{k}", pool_ix - 1)
                };
                which(&mut g.pools[pool_ix]).push(name);
            }
        };
    distribute(n_ints.max(4), "i", |p| &mut p.ints, &mut g);
    distribute(n_ptrs.max(4), "p", |p| &mut p.ptrs, &mut g);
    distribute(n_pptrs.max(2), "q", |p| &mut p.pptrs, &mut g);
    for k in 0..n_structs.max(2) {
        let shared = k % 10 < 3;
        let pool_ix = if shared {
            0
        } else {
            g.rng.random_range(0..n_files) + 1
        };
        let name = if shared {
            format!("gs{k}")
        } else {
            format!("s{}_{k}", pool_ix - 1)
        };
        // Half the instances belong to a handful of *hot* types (list/tree
        // nodes in real code): under the field-independent model their
        // instances conflate into large blobs — the Table 4 effect.
        let hot_tags = (n_struct_types / 40)
            .clamp(1, 64)
            .max(4)
            .min(n_struct_types);
        let tag = if k % 2 == 0 {
            k % hot_tags
        } else {
            k % n_struct_types
        };
        g.pools[pool_ix].structs.push((name, tag));
    }

    let total_ptrs: usize = g.pools.iter().map(|p| p.ptrs.len()).sum();
    let n_clusters = (total_ptrs / cluster.max(1)).max(1);
    g.bridges_left = if std::env::var("CLA_GEN_NO_BRIDGES").is_ok() {
        0
    } else {
        (n_clusters as f64 * bridge_density) as usize
    };
    g.identity_count = ((n_clusters as f64 * ident_density) as usize).clamp(1, n_fids);
    g.field_edges_left = (n_clusters as f64 * field_density) as usize;
    for k in 0..n_fids {
        let owner = k % n_files;
        g.fids.push((owner, format!("fid{k}")));
    }
    for k in 0..n_fptrs {
        g.fptrs.push(format!("fptr{k}"));
    }

    // ---- address-of assignments -----------------------------------------
    // Function pointers receive at most a couple of targets each: real code
    // assigns a handler once or twice, and unbounded assignment would turn
    // every indirect call into a giant join point.
    let mut fptr_assigns_left = g.fptrs.len() * 2;
    for _ in 0..n_addr {
        let f = g.random_file();
        let mut roll = g.rng.random_range(0..100);
        if roll >= 90 && fptr_assigns_left == 0 {
            roll = 0;
        }
        if roll < 55 {
            if let Some((p, x)) = g.pick2(f, |p| &p.ptrs, |p| &p.ints) {
                g.emit(f, format!("{p} = &{x};"));
            }
        } else if roll < 75 {
            // Correlated: a cell only ever holds addresses from its window.
            if let Some((q, p)) = g.pick_assoc(f, None) {
                g.emit(f, format!("{q} = &{p};"));
            }
        } else if roll < 90 {
            // Struct traffic: a pointer field gets an address, or a struct
            // pointer gets an instance's address.
            if let Some((scope, sv, tag)) = g.pick_struct(f) {
                match g.rng.random_range(0..3) {
                    0 => {
                        if let Some(x) = g.pick(f, |p| &p.ints).map(str::to_string) {
                            let fld = FIELDS_PTR[g.rng.random_range(0..FIELDS_PTR.len())];
                            g.emit(f, format!("{sv}.{fld} = &{x};"));
                        }
                    }
                    1 => {
                        let sp = g.sptr_for(scope, tag);
                        g.emit(f, format!("{sp} = &{sv};"));
                    }
                    _ => {
                        // Link two instances of the same type: list/tree
                        // structure, the classic field-independent killer.
                        let same_tag: Vec<String> = g.pools[scope]
                            .structs
                            .iter()
                            .filter(|(_, t)| *t == tag)
                            .map(|(n, _)| n.clone())
                            .collect();
                        if same_tag.len() >= 2 {
                            let other = same_tag[g.rng.random_range(0..same_tag.len())].clone();
                            if other != sv {
                                g.emit(f, format!("{sv}.link = &{other};"));
                            }
                        }
                    }
                }
            }
        } else {
            // Function address into a function pointer.
            fptr_assigns_left -= 1;
            let fp = g.fptrs[g.rng.random_range(0..g.fptrs.len())].clone();
            let (_, fid) = g.fids[g.rng.random_range(0..g.fids.len())].clone();
            g.emit(f, format!("{fp} = {fid};"));
        }
    }

    // ---- copies -----------------------------------------------------------
    // Each fid definition contributes 2 copies (param in, return out); each
    // emitted call contributes 2 (argument + result). Reserve that budget.
    let env_off = |k: &str| std::env::var(k).is_ok();
    let call_budget = if env_off("CLA_GEN_NO_CALLS") {
        0
    } else {
        (n_copy / 20).min(n_fids * 4)
    };
    let reserved = n_fids * 2 + call_budget * 2;
    let plain_copies = n_copy.saturating_sub(reserved);
    let int_frac = opts
        .int_copy_fraction
        .unwrap_or_else(|| spec.irrelevant_fraction())
        .clamp(0.0, 0.95);
    let int_copies = (plain_copies as f64 * int_frac) as usize;
    // The loop is budget-driven: statements that lower to several copies
    // (arithmetic, cycles) consume several units.
    let mut emitted_int = 0usize;
    let mut emitted_ptr = 0usize;
    while emitted_int + emitted_ptr < plain_copies {
        let f = g.random_file();
        if emitted_int < int_copies {
            // Integer traffic: 20% as x = y + z (two copies), rest plain.
            if emitted_int.is_multiple_of(9) {
                if let (Some(x), Some(y), Some(z)) = (
                    g.pick(f, |p| &p.ints).map(str::to_string),
                    g.pick(f, |p| &p.ints).map(str::to_string),
                    g.pick(f, |p| &p.ints).map(str::to_string),
                ) {
                    g.emit(f, format!("{x} = {y} + {z};"));
                    emitted_int += 2;
                }
            } else if let Some((x, y)) = g.pick2(f, |p| &p.ints, |p| &p.ints) {
                g.emit(f, format!("{x} = {y};"));
                emitted_int += 1;
            }
        } else {
            let roll = g.rng.random_range(0..100);
            let cycle_pct = if std::env::var("CLA_GEN_NO_CYCLES").is_ok() {
                0
            } else {
                cycle_pct
            };
            if roll < cycle_pct {
                // Deliberately close a small pointer cycle over *adjacent*
                // local pointers (counts as `len` copies). Cycles are rare,
                // short, and contiguous: scattering their members across the
                // pool would collapse whole files into one strongly
                // connected component, which real code does not do.
                let len = g.rng.random_range(3..6usize);
                let local_len = g.pools[f + 1].ptrs.len();
                if local_len >= len {
                    // Cluster-aligned so a cycle never stitches two
                    // clusters together.
                    let slots = (local_len / g.cluster.max(len)).max(1);
                    let start = g.rng.random_range(0..slots) * g.cluster.max(len);
                    let start = start.min(local_len - len);
                    let members: Vec<String> = g.pools[f + 1].ptrs[start..start + len].to_vec();
                    for w in 0..members.len() {
                        let a = &members[w];
                        let b = &members[(w + 1) % members.len()];
                        g.emit(f, format!("{a} = {b};"));
                        emitted_ptr += 1;
                    }
                }
            } else if roll < cycle_pct + struct_pct && g.field_edges_left > 0 {
                // Struct field traffic. Fields are global join points in
                // the field-based model: both the total number of field
                // copy edges (cluster-scaled budget) and the spokes per
                // field object are bounded, as in real code.
                if let Some((scope, sv, tag)) = g.pick_struct(f) {
                    let Some(x) = g.pick_ptr_for_tag(scope, tag) else {
                        continue;
                    };
                    let fld_ix = g.rng.random_range(0..FIELDS_PTR.len());
                    let cap = g.field_spoke_cap;
                    let spokes = g.field_spokes.entry((sv.clone(), fld_ix)).or_insert(0);
                    if *spokes < cap {
                        *spokes += 1;
                        g.field_edges_left -= 1;
                        let fld = FIELDS_PTR[fld_ix];
                        // A quarter of struct traffic walks links
                        // (`sp = sp->link`); the rest touches payload
                        // fields, half through a struct pointer — identical
                        // under the field-based model, but loads and stores
                        // under the field-independent one (the Table 4
                        // contrast).
                        let sp = g.sptr_for(scope, tag);
                        match g.rng.random_range(0..4) {
                            0 => g.emit(f, format!("{sp} = {sp}->link;")),
                            1 => {
                                if g.rng.random_range(0..2) == 0 {
                                    g.emit(f, format!("{sp}->{fld} = {x};"));
                                } else {
                                    g.emit(f, format!("{x} = {sp}->{fld};"));
                                }
                            }
                            _ => {
                                if g.rng.random_range(0..2) == 0 {
                                    g.emit(f, format!("{sv}.{fld} = {x};"));
                                } else {
                                    g.emit(f, format!("{x} = {sv}.{fld};"));
                                }
                            }
                        }
                        emitted_ptr += 1;
                    }
                }
            } else if roll < cycle_pct + struct_pct + pptr_copy_pct {
                if let Some((a, b)) = g.pick_cluster_pair(f, |p| &p.pptrs) {
                    // Consistent ordering keeps accidental copies acyclic
                    // (cycles are injected explicitly above).
                    let (dst, src) = if a > b { (a, b) } else { (b, a) };
                    g.emit(f, format!("{dst} = {src};"));
                    emitted_ptr += 1;
                }
            } else if let Some((a, b)) = g.pick_cluster_pair(f, |p| &p.ptrs) {
                let (dst, src) = if a > b { (a, b) } else { (b, a) };
                g.emit(f, format!("{dst} = {src};"));
                emitted_ptr += 1;
            }
            // Degenerate pools (tiny scales) may fail to emit; always make
            // progress so the budget loop terminates.
            emitted_ptr += usize::from(roll >= 95);
        }
    }
    // Calls: half direct, half through function pointers. Identity
    // functions and function pointers conflate their call sites, so their
    // site counts are capped by the conflation tier.
    let mut fid_sites = vec![0usize; g.fids.len()];
    let mut fptr_sites = vec![0usize; g.fptrs.len()];
    for k in 0..call_budget {
        let f = g.random_file();
        let Some((dst, arg)) = g.pick2(f, |p| &p.ptrs, |p| &p.ptrs) else {
            continue;
        };
        if k % 2 == 0 {
            let mut ix = g.rng.random_range(0..g.fids.len());
            let ident_n = g.identity_count;
            let is_identity = |i: usize| i < ident_n;
            if is_identity(ix) && fid_sites[ix] >= identity_site_cap {
                // Redirect to a non-conflating function.
                ix = (ix + ident_n).min(g.fids.len() - 1);
            }
            fid_sites[ix] += 1;
            let (_, fid) = g.fids[ix].clone();
            g.emit(f, format!("{dst} = {fid}({arg});"));
        } else {
            let ix = g.rng.random_range(0..g.fptrs.len());
            if fptr_sites[ix] >= fptr_site_cap {
                // Over cap: call a non-conflating direct function instead.
                let mut j = g.rng.random_range(0..g.fids.len());
                if j < g.identity_count {
                    j = (j + g.identity_count).min(g.fids.len() - 1);
                }
                fid_sites[j] += 1;
                let (_, fid) = g.fids[j].clone();
                g.emit(f, format!("{dst} = {fid}({arg});"));
            } else {
                fptr_sites[ix] += 1;
                let fp = g.fptrs[ix].clone();
                g.emit(f, format!("{dst} = {fp}({arg});"));
            }
        }
    }

    // ---- complex assignments ------------------------------------------------
    let n_store = if env_off("CLA_GEN_NO_STORES") {
        0
    } else {
        n_store
    };
    let n_load = if env_off("CLA_GEN_NO_LOADS") {
        0
    } else {
        n_load
    };
    let n_sl = if env_off("CLA_GEN_NO_SL") { 0 } else { n_sl };
    let (store_par, load_par) = if split_sl {
        (Some(0), Some(1))
    } else {
        (None, None)
    };
    for _ in 0..n_store {
        let f = g.random_file();
        if let Some((q, p)) = g.pick_assoc(f, store_par) {
            g.emit(f, format!("*{q} = {p};"));
        }
    }
    for _ in 0..n_load {
        let f = g.random_file();
        if let Some((q, p)) = g.pick_assoc(f, load_par) {
            g.emit(f, format!("{p} = *{q};"));
        }
    }
    for _ in 0..n_sl {
        // Both sides from one cluster: `*a = *b` moves data within one
        // structure, it does not wire two random ones together.
        let f = g.random_file();
        if let Some((a, b)) = g.pick_cluster_pair(f, |p| &p.pptrs) {
            g.emit(f, format!("*{a} = *{b};"));
        }
    }

    render(spec, &mut g)
}

/// Renders pools + statements into header and source files.
fn render(spec: &BenchSpec, g: &mut Gen) -> Workload {
    let mut files: Vec<(String, String)> = Vec::new();

    // ---- shared header ----
    let mut h = String::new();
    let _ = writeln!(
        h,
        "/* generated: shared declarations for `{}` */",
        spec.name
    );
    let _ = writeln!(h, "#ifndef SHARED_H");
    let _ = writeln!(h, "#define SHARED_H");
    for tag in &g.struct_tags {
        let _ = writeln!(
            h,
            "struct {tag} {{ struct {tag} *link; int {}; int {}; int *{}; int *{}; }};",
            FIELDS_INT[0], FIELDS_INT[1], FIELDS_PTR[0], FIELDS_PTR[1]
        );
    }
    let shared = g.pools[0].clone();
    for v in &shared.ints {
        let _ = writeln!(h, "extern int {v};");
    }
    for v in &shared.ptrs {
        let _ = writeln!(h, "extern int *{v};");
    }
    for v in &shared.pptrs {
        let _ = writeln!(h, "extern int **{v};");
    }
    for (v, tag) in &shared.structs {
        let tag = &g.struct_tags[*tag];
        let _ = writeln!(h, "extern struct {tag} {v};");
    }
    let mut sptr_list: Vec<((usize, usize), String)> =
        g.sptrs.iter().map(|(k, v)| (*k, v.clone())).collect();
    sptr_list.sort();
    for ((scope, tag), name) in &sptr_list {
        if *scope == 0 {
            let tag = &g.struct_tags[*tag];
            let _ = writeln!(h, "extern struct {tag} *{name};");
        }
    }
    for (_, fid) in &g.fids {
        let _ = writeln!(h, "int *{fid}(int *a);");
    }
    for fp in &g.fptrs {
        let _ = writeln!(h, "extern int *(*{fp})(int *);");
    }
    let _ = writeln!(h, "#endif");
    files.push(("shared.h".to_string(), h));

    // ---- source files ----
    for f in 0..g.files {
        let mut c = String::new();
        let _ = writeln!(c, "/* generated: {} part {f} */", spec.name);
        let _ = writeln!(c, "#include \"shared.h\"");
        // Definitions of the shared pool are owned round-robin.
        let own = |k: usize| k % g.files == f;
        for (k, v) in shared.ints.iter().enumerate() {
            if own(k) {
                let _ = writeln!(c, "int {v};");
            }
        }
        for (k, v) in shared.ptrs.iter().enumerate() {
            if own(k) {
                let _ = writeln!(c, "int *{v};");
            }
        }
        for (k, v) in shared.pptrs.iter().enumerate() {
            if own(k) {
                let _ = writeln!(c, "int **{v};");
            }
        }
        for (k, (v, tag)) in shared.structs.iter().enumerate() {
            if own(k) {
                let tag = &g.struct_tags[*tag];
                let _ = writeln!(c, "struct {tag} {v};");
            }
        }
        // Struct pointers: shared ones are owned round-robin, local ones
        // belong to their file.
        for (k, ((scope, tag), name)) in sptr_list.iter().enumerate() {
            if (*scope == 0 && own(k)) || *scope == f + 1 {
                let tag = &g.struct_tags[*tag];
                let _ = writeln!(c, "struct {tag} *{name};");
            }
        }
        for (k, fp) in g.fptrs.iter().enumerate() {
            if own(k) {
                let _ = writeln!(c, "int *(*{fp})(int *);");
            }
        }
        // File-local globals (every 7th is static, for linker coverage).
        let local = &g.pools[f + 1];
        for (k, v) in local.ints.iter().enumerate() {
            let _ = writeln!(c, "{}int {v};", if k % 7 == 0 { "static " } else { "" });
        }
        for (k, v) in local.ptrs.iter().enumerate() {
            let _ = writeln!(c, "{}int *{v};", if k % 7 == 0 { "static " } else { "" });
        }
        for v in &local.pptrs {
            let _ = writeln!(c, "int **{v};");
        }
        for (v, tag) in &local.structs {
            let tag = &g.struct_tags[*tag];
            let _ = writeln!(c, "struct {tag} {v};");
        }
        // Functions owned by this file: most return their own storage (no
        // cross-call-site conflation); a quarter are identity functions,
        // whose context-insensitive join points the paper discusses.
        for (k, (owner, fid)) in g.fids.iter().enumerate() {
            if *owner == f {
                if k < g.identity_count {
                    let _ = writeln!(c, "int *{fid}(int *a) {{ return a; }}");
                } else {
                    // The argument is stored away, not returned: call sites
                    // do not conflate with each other.
                    let _ = writeln!(c, "static int {fid}_own;");
                    let _ = writeln!(c, "static int *{fid}_keep;");
                    let _ = writeln!(
                        c,
                        "int *{fid}(int *a) {{ {fid}_keep = a; return &{fid}_own; }}"
                    );
                }
            }
        }
        // Statements packed into functions of ~20.
        let stmts = std::mem::take(&mut g.stmts[f]);
        for (fx, chunk) in stmts.chunks(20).enumerate() {
            let _ = writeln!(c, "void fn{f}_{fx}(void) {{");
            for s in chunk {
                let _ = writeln!(c, "    {s}");
            }
            let _ = writeln!(c, "}}");
        }
        files.push((format!("{}_{f}.c", spec.name), c));
    }

    Workload {
        name: spec.name.to_string(),
        files,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::by_name;

    #[test]
    fn deterministic() {
        let spec = by_name("nethack").unwrap();
        let opts = GenOptions {
            scale: 0.05,
            files: 3,
            ..Default::default()
        };
        let a = generate(spec, &opts);
        let b = generate(spec, &opts);
        assert_eq!(a.files, b.files);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = by_name("nethack").unwrap();
        let a = generate(
            spec,
            &GenOptions {
                scale: 0.05,
                seed: 1,
                ..Default::default()
            },
        );
        let b = generate(
            spec,
            &GenOptions {
                scale: 0.05,
                seed: 2,
                ..Default::default()
            },
        );
        assert_ne!(a.files, b.files);
    }

    #[test]
    fn structure() {
        let spec = by_name("burlap").unwrap();
        let w = generate(
            spec,
            &GenOptions {
                scale: 0.02,
                files: 4,
                ..Default::default()
            },
        );
        assert_eq!(w.source_files().len(), 4);
        assert!(w.files[0].0.ends_with("shared.h"));
        assert!(w.total_bytes() > 500);
        assert!(w.total_lines() > 20);
        // Every source file includes the shared header.
        for (p, c) in &w.files {
            if p.ends_with(".c") {
                assert!(c.contains("#include \"shared.h\""), "{p}");
            }
        }
    }
}
