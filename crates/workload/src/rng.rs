//! A small, seeded, dependency-free RNG for deterministic workload
//! generation.
//!
//! SplitMix64 (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
//! Generators*): one 64-bit state word, an additive Weyl sequence, and a
//! two-round finalizer. Statistically strong enough for statement mixing,
//! trivially reproducible, and the same seed always yields the same
//! workload on every platform.

/// Deterministic 64-bit generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator. The same seed produces the same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `range` (half-open). Uses Lemire-style widening
    /// multiplication; the slight modulo bias of one 64-bit draw over spans
    /// this small (< 2^32) is far below anything the generator's consumers
    /// can observe.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    pub fn random_range<T: RangeInt>(&mut self, range: std::ops::Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "random_range over an empty range");
        let span = hi - lo;
        let draw = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        T::from_u64(lo + draw)
    }
}

/// Integer types `random_range` can produce.
pub trait RangeInt: Copy {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

impl RangeInt for usize {
    fn to_u64(self) -> u64 {
        self as u64
    }

    fn from_u64(v: u64) -> Self {
        v as usize
    }
}

impl RangeInt for u32 {
    fn to_u64(self) -> u64 {
        u64::from(self)
    }

    fn from_u64(v: u64) -> Self {
        v as u32
    }
}

impl RangeInt for i32 {
    fn to_u64(self) -> u64 {
        u64::try_from(self).expect("random_range bounds must be non-negative")
    }

    fn from_u64(v: u64) -> Self {
        v as i32
    }
}

impl RangeInt for u64 {
    fn to_u64(self) -> u64 {
        self
    }

    fn from_u64(v: u64) -> Self {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.random_range(3..17usize);
            assert!((3..17).contains(&v));
        }
        // Single-element range is fine.
        assert_eq!(r.random_range(5..6u32), 5);
    }

    #[test]
    fn roughly_uniform() {
        let mut r = SplitMix64::seed_from_u64(1);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.random_range(0..8usize)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {c}");
        }
    }
}
