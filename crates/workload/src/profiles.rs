//! Benchmark profiles calibrated to the paper's Table 2.
//!
//! We do not have the sources of the paper's benchmarks (nethack, burlap,
//! vortex, emacs, povray, gcc, gimp, and the proprietary Lucent code base),
//! so each is replaced by a synthetic C program whose primitive-assignment
//! profile — the counts of the five assignment forms, the variable count,
//! and the pointer-graph shape — matches the published row, optionally
//! scaled down. Solver cost is driven by exactly these quantities, so the
//! substitution preserves the behaviour the evaluation measures.

/// One row of the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchSpec {
    pub name: &'static str,
    /// Source lines as reported in the paper (0 when the paper lists none).
    pub loc_source: u32,
    /// Preprocessed lines (paper column "LOC (preproc.)", in lines).
    pub loc_preproc: u32,
    /// Program variables.
    pub variables: u32,
    /// `x = y`
    pub copy: u32,
    /// `x = &y`
    pub addr: u32,
    /// `*x = y`
    pub store: u32,
    /// `*x = *y`
    pub store_load: u32,
    /// `x = *y`
    pub load: u32,
}

impl BenchSpec {
    /// Total primitive assignments.
    pub fn total_assigns(&self) -> u32 {
        self.copy + self.addr + self.store + self.store_load + self.load
    }
}

/// The eight benchmarks of Table 2 (lucent's line counts are from the
/// paper's prose: "in excess of a million lines", reported as 1.3M source).
pub const PAPER_BENCHMARKS: [BenchSpec; 8] = [
    BenchSpec {
        name: "nethack",
        loc_source: 0,
        loc_preproc: 44_100,
        variables: 3_856,
        copy: 9_118,
        addr: 1_115,
        store: 30,
        store_load: 34,
        load: 105,
    },
    BenchSpec {
        name: "burlap",
        loc_source: 0,
        loc_preproc: 74_600,
        variables: 6_859,
        copy: 14_202,
        addr: 1_049,
        store: 1_160,
        store_load: 714,
        load: 1_897,
    },
    BenchSpec {
        name: "vortex",
        loc_source: 0,
        loc_preproc: 170_300,
        variables: 11_395,
        copy: 24_218,
        addr: 7_458,
        store: 353,
        store_load: 231,
        load: 1_866,
    },
    BenchSpec {
        name: "emacs",
        loc_source: 0,
        loc_preproc: 93_500,
        variables: 12_587,
        copy: 31_345,
        addr: 3_461,
        store: 614,
        store_load: 154,
        load: 1_029,
    },
    BenchSpec {
        name: "povray",
        loc_source: 0,
        loc_preproc: 175_500,
        variables: 12_570,
        copy: 29_565,
        addr: 4_009,
        store: 2_431,
        store_load: 1_190,
        load: 3_085,
    },
    BenchSpec {
        name: "gcc",
        loc_source: 0,
        loc_preproc: 199_800,
        variables: 18_749,
        copy: 62_556,
        addr: 3_434,
        store: 1_673,
        store_load: 585,
        load: 1_467,
    },
    BenchSpec {
        name: "gimp",
        loc_source: 440_000,
        loc_preproc: 7_486_700,
        variables: 131_552,
        copy: 303_810,
        addr: 25_578,
        store: 5_943,
        store_load: 2_397,
        load: 6_428,
    },
    BenchSpec {
        name: "lucent",
        loc_source: 1_300_000,
        loc_preproc: 0,
        variables: 96_509,
        copy: 270_148,
        addr: 72_355,
        store: 1_562,
        store_load: 991,
        load: 3_989,
    },
];

/// Looks a profile up by name.
pub fn by_name(name: &str) -> Option<&'static BenchSpec> {
    PAPER_BENCHMARKS.iter().find(|b| b.name == name)
}

/// One row of the paper's Table 3 (field-based results on an 800 MHz
/// Pentium) — used by the benchmark harness for side-by-side reporting and
/// by the generator to calibrate how much of the code base is irrelevant to
/// pointers (the loaded/in-file ratio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    pub name: &'static str,
    pub pointer_variables: u32,
    pub relations: u64,
    pub real_time_s: f64,
    pub user_time_s: f64,
    pub space_mb: f64,
    pub assigns_in_core: u32,
    pub assigns_loaded: u32,
    pub assigns_in_file: u32,
}

/// The paper's Table 3.
pub const PAPER_TABLE3: [Table3Row; 8] = [
    Table3Row {
        name: "nethack",
        pointer_variables: 1_018,
        relations: 7_000,
        real_time_s: 0.03,
        user_time_s: 0.01,
        space_mb: 5.2,
        assigns_in_core: 114,
        assigns_loaded: 5_933,
        assigns_in_file: 10_402,
    },
    Table3Row {
        name: "burlap",
        pointer_variables: 3_332,
        relations: 201_000,
        real_time_s: 0.08,
        user_time_s: 0.03,
        space_mb: 5.4,
        assigns_in_core: 3_201,
        assigns_loaded: 12_907,
        assigns_in_file: 19_022,
    },
    Table3Row {
        name: "vortex",
        pointer_variables: 4_359,
        relations: 392_000,
        real_time_s: 0.15,
        user_time_s: 0.11,
        space_mb: 5.7,
        assigns_in_core: 1_792,
        assigns_loaded: 15_411,
        assigns_in_file: 34_126,
    },
    Table3Row {
        name: "emacs",
        pointer_variables: 8_246,
        relations: 11_232_000,
        real_time_s: 0.54,
        user_time_s: 0.51,
        space_mb: 6.0,
        assigns_in_core: 1_560,
        assigns_loaded: 28_445,
        assigns_in_file: 36_603,
    },
    Table3Row {
        name: "povray",
        pointer_variables: 6_126,
        relations: 141_000,
        real_time_s: 0.11,
        user_time_s: 0.09,
        space_mb: 5.7,
        assigns_in_core: 5_886,
        assigns_loaded: 27_566,
        assigns_in_file: 40_280,
    },
    Table3Row {
        name: "gcc",
        pointer_variables: 11_289,
        relations: 123_000,
        real_time_s: 0.20,
        user_time_s: 0.17,
        space_mb: 6.0,
        assigns_in_core: 2_732,
        assigns_loaded: 53_805,
        assigns_in_file: 69_715,
    },
    Table3Row {
        name: "gimp",
        pointer_variables: 45_091,
        relations: 15_298_000,
        real_time_s: 1.05,
        user_time_s: 1.00,
        space_mb: 12.1,
        assigns_in_core: 8_377,
        assigns_loaded: 144_534,
        assigns_in_file: 344_156,
    },
    Table3Row {
        name: "lucent",
        pointer_variables: 22_360,
        relations: 3_865_000,
        real_time_s: 0.46,
        user_time_s: 0.38,
        space_mb: 8.8,
        assigns_in_core: 4_281,
        assigns_loaded: 101_856,
        assigns_in_file: 349_045,
    },
];

/// One row of the paper's Table 4 (field-independent, preliminary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table4Row {
    pub name: &'static str,
    pub pointer_variables: u32,
    pub relations: u64,
    pub user_time_s: f64,
    pub space_mb: f64,
}

/// The field-independent half of the paper's Table 4.
pub const PAPER_TABLE4: [Table4Row; 8] = [
    Table4Row {
        name: "nethack",
        pointer_variables: 1_714,
        relations: 97_000,
        user_time_s: 0.03,
        space_mb: 5.2,
    },
    Table4Row {
        name: "burlap",
        pointer_variables: 2_903,
        relations: 323_000,
        user_time_s: 0.21,
        space_mb: 5.9,
    },
    Table4Row {
        name: "vortex",
        pointer_variables: 4_655,
        relations: 164_000,
        user_time_s: 0.09,
        space_mb: 5.7,
    },
    Table4Row {
        name: "emacs",
        pointer_variables: 8_314,
        relations: 14_643_000,
        user_time_s: 1.05,
        space_mb: 6.7,
    },
    Table4Row {
        name: "povray",
        pointer_variables: 5_759,
        relations: 1_375_000,
        user_time_s: 0.39,
        space_mb: 6.6,
    },
    Table4Row {
        name: "gcc",
        pointer_variables: 10_984,
        relations: 408_000,
        user_time_s: 0.65,
        space_mb: 8.8,
    },
    Table4Row {
        name: "gimp",
        pointer_variables: 39_888,
        relations: 79_603_000,
        user_time_s: 30.12,
        space_mb: 18.1,
    },
    Table4Row {
        name: "lucent",
        pointer_variables: 26_085,
        relations: 19_665_000,
        user_time_s: 137.20,
        space_mb: 59.0,
    },
];

/// The paper's Table 3 row for a benchmark.
pub fn table3(name: &str) -> Option<&'static Table3Row> {
    PAPER_TABLE3.iter().find(|r| r.name == name)
}

/// The paper's Table 4 (field-independent) row for a benchmark.
pub fn table4(name: &str) -> Option<&'static Table4Row> {
    PAPER_TABLE4.iter().find(|r| r.name == name)
}

impl BenchSpec {
    /// Fraction of this benchmark's assignments that are irrelevant to the
    /// points-to analysis, calibrated from the paper's Table 3
    /// loaded/in-file ratio (irrelevant assignments are never demand-loaded).
    pub fn irrelevant_fraction(&self) -> f64 {
        match table3(self.name) {
            Some(r) if r.assigns_in_file > 0 => {
                1.0 - f64::from(r.assigns_loaded) / f64::from(r.assigns_in_file)
            }
            _ => 0.5,
        }
    }

    /// The average points-to set size the paper measured for this benchmark
    /// (Table 3 relations / pointer variables) — the generator's conflation
    /// target. The suite varies enormously: gcc averages ~11, emacs ~1362.
    pub fn target_avg_pts(&self) -> f64 {
        match table3(self.name) {
            Some(r) if r.pointer_variables > 0 => {
                r.relations as f64 / f64::from(r.pointer_variables)
            }
            _ => 50.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_present() {
        assert_eq!(PAPER_BENCHMARKS.len(), 8);
        assert_eq!(by_name("gimp").unwrap().variables, 131_552);
        assert_eq!(by_name("lucent").unwrap().copy, 270_148);
        assert!(by_name("word97").is_none());
    }

    #[test]
    fn totals() {
        let nh = by_name("nethack").unwrap();
        assert_eq!(nh.total_assigns(), 9_118 + 1_115 + 30 + 34 + 105);
    }
}
