//! # cla-workload — synthetic benchmark generator
//!
//! Stand-in for the paper's benchmark suite (Table 2: nethack, burlap,
//! vortex, emacs, povray, gcc, gimp, and the proprietary Lucent code base),
//! none of which ship with this reproduction. [`generate`] emits a
//! deterministic multi-file C program whose primitive-assignment profile
//! matches a chosen [`BenchSpec`] row at a configurable scale; the
//! evaluation harness in `cla-bench` runs the real pipeline (compile →
//! link → analyze) over these programs.
//!
//! ```
//! use cla_workload::{by_name, generate, GenOptions};
//!
//! let spec = by_name("nethack").unwrap();
//! let workload = generate(spec, &GenOptions { scale: 0.05, files: 4, ..Default::default() });
//! assert_eq!(workload.source_files().len(), 4);
//! ```

mod gen;
mod profiles;
pub mod rng;

pub use gen::{generate, GenOptions, Workload};
pub use profiles::{
    by_name, table3, table4, BenchSpec, Table3Row, Table4Row, PAPER_BENCHMARKS, PAPER_TABLE3,
    PAPER_TABLE4,
};
pub use rng::SplitMix64;

#[cfg(test)]
mod tests {
    use super::*;
    use cla_cfront::{MemoryFs, PpOptions};
    use cla_ir::{compile_file, LowerOptions};

    fn compile_workload(w: &Workload) -> cla_ir::AssignCounts {
        let mut fs = MemoryFs::new();
        for (p, c) in &w.files {
            fs.add(p.clone(), c.clone());
        }
        let mut total = cla_ir::AssignCounts::default();
        for f in w.source_files() {
            let (unit, _) = compile_file(&fs, f, &PpOptions::default(), &LowerOptions::default())
                .unwrap_or_else(|e| panic!("generated code failed to compile: {e}"));
            let c = unit.assign_counts();
            total.copy += c.copy;
            total.addr += c.addr;
            total.store += c.store;
            total.load += c.load;
            total.store_load += c.store_load;
        }
        total
    }

    #[test]
    fn generated_code_parses_and_lowers() {
        for name in ["nethack", "vortex", "lucent"] {
            let spec = by_name(name).unwrap();
            let w = generate(
                spec,
                &GenOptions {
                    scale: 0.02,
                    files: 3,
                    ..Default::default()
                },
            );
            let counts = compile_workload(&w);
            assert!(counts.total() > 0, "{name} produced no assignments");
        }
    }

    #[test]
    fn counts_approximate_spec() {
        let spec = by_name("burlap").unwrap();
        let scale = 0.2;
        let w = generate(
            spec,
            &GenOptions {
                scale,
                files: 4,
                ..Default::default()
            },
        );
        let counts = compile_workload(&w);
        let target = |v: u32| f64::from(v) * scale;
        // Complex assignment counts should land within 30% of target
        // (these are emitted one statement per assignment).
        for (got, want, label) in [
            (counts.store as f64, target(spec.store), "store"),
            (counts.load as f64, target(spec.load), "load"),
            (
                counts.store_load as f64,
                target(spec.store_load),
                "store_load",
            ),
            (counts.addr as f64, target(spec.addr), "addr"),
        ] {
            assert!(
                got >= want * 0.7 && got <= want * 1.4,
                "{label}: got {got}, want ~{want}"
            );
        }
        // Copies have call/def overheads; allow a wider band.
        let want_copy = target(spec.copy);
        assert!(
            (counts.copy as f64) >= want_copy * 0.6 && (counts.copy as f64) <= want_copy * 1.5,
            "copy: got {}, want ~{want_copy}",
            counts.copy
        );
    }
}
